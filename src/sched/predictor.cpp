#include "sched/predictor.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace tracon::sched {

void Predictor::predict_runtime_batch(std::span<const PredictQuery> queries,
                                      std::span<double> out) const {
  TRACON_REQUIRE(queries.size() == out.size(),
                 "batch output span size mismatch");
  for (std::size_t i = 0; i < queries.size(); ++i)
    out[i] = predict_runtime(queries[i].task, queries[i].neighbour);
}

void Predictor::predict_iops_batch(std::span<const PredictQuery> queries,
                                   std::span<double> out) const {
  TRACON_REQUIRE(queries.size() == out.size(),
                 "batch output span size mismatch");
  for (std::size_t i = 0; i < queries.size(); ++i)
    out[i] = predict_iops(queries[i].task, queries[i].neighbour);
}

TablePredictor::TablePredictor(stats::Matrix runtime, stats::Matrix iops)
    : runtime_(std::move(runtime)), iops_(std::move(iops)) {
  TRACON_REQUIRE(runtime_.rows() > 0, "empty prediction table");
  TRACON_REQUIRE(runtime_.cols() == runtime_.rows() + 1,
                 "table needs one column per neighbour class plus idle");
  TRACON_REQUIRE(iops_.rows() == runtime_.rows() &&
                     iops_.cols() == runtime_.cols(),
                 "runtime/iops table shape mismatch");
}

double TablePredictor::predict_runtime(
    std::size_t task, const std::optional<std::size_t>& neighbour) const {
  TRACON_REQUIRE(task < runtime_.rows(), "task class out of range");
  std::size_t col = neighbour.value_or(runtime_.rows());
  TRACON_REQUIRE(col < runtime_.cols(), "neighbour class out of range");
  TRACON_CHECK_FINITE(runtime_(task, col), "predicted runtime");
  TRACON_DCHECK(runtime_(task, col) >= 0.0, "negative predicted runtime");
  return runtime_(task, col);
}

double TablePredictor::predict_iops(
    std::size_t task, const std::optional<std::size_t>& neighbour) const {
  TRACON_REQUIRE(task < iops_.rows(), "task class out of range");
  std::size_t col = neighbour.value_or(iops_.rows());
  TRACON_REQUIRE(col < iops_.cols(), "neighbour class out of range");
  TRACON_CHECK_FINITE(iops_(task, col), "predicted IOPS");
  TRACON_DCHECK(iops_(task, col) >= 0.0, "negative predicted IOPS");
  return iops_(task, col);
}

namespace {

/// Shared body of the two table batch lookups: one bounds check per
/// query, then a direct dense-matrix read.
void table_batch(const stats::Matrix& table,
                 std::span<const PredictQuery> queries, std::span<double> out,
                 const char* what) {
  TRACON_REQUIRE(queries.size() == out.size(),
                 "batch output span size mismatch");
  const std::size_t n = table.rows();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    TRACON_REQUIRE(queries[i].task < n, "task class out of range");
    std::size_t col = queries[i].neighbour.value_or(n);
    TRACON_REQUIRE(col < table.cols(), "neighbour class out of range");
    double v = table(queries[i].task, col);
    TRACON_CHECK_FINITE(v, what);
    TRACON_DCHECK(v >= 0.0, "negative table prediction");
    out[i] = v;
  }
}

}  // namespace

void TablePredictor::predict_runtime_batch(
    std::span<const PredictQuery> queries, std::span<double> out) const {
  table_batch(runtime_, queries, out, "predicted runtime");
}

void TablePredictor::predict_iops_batch(std::span<const PredictQuery> queries,
                                        std::span<double> out) const {
  table_batch(iops_, queries, out, "predicted IOPS");
}

TablePredictor TablePredictor::from_models(
    const std::vector<model::ModelPair>& models,
    const std::vector<monitor::AppProfile>& profiles) {
  TRACON_REQUIRE(!models.empty() && models.size() == profiles.size(),
                 "need one model pair and profile per application");
  const std::size_t n = models.size();
  stats::Matrix rt(n, n + 1), io(n, n + 1);
  for (std::size_t t = 0; t < n; ++t) {
    TRACON_REQUIRE(models[t].runtime != nullptr && models[t].iops != nullptr,
                   "model pair has null model");
    for (std::size_t b = 0; b <= n; ++b) {
      monitor::AppProfile bg =
          b < n ? profiles[b] : monitor::AppProfile::idle();
      rt(t, b) = models[t].runtime->predict_pair(profiles[t], bg);
      io(t, b) = models[t].iops->predict_pair(profiles[t], bg);
      TRACON_CHECK_FINITE(rt(t, b), "model-predicted runtime");
      TRACON_CHECK_FINITE(io(t, b), "model-predicted IOPS");
      TRACON_DCHECK(rt(t, b) >= 0.0 && io(t, b) >= 0.0,
                    "models must clamp predictions at zero");
    }
  }
  return TablePredictor(std::move(rt), std::move(io));
}

ConfidenceWeightedPredictor::ConfidenceWeightedPredictor(
    std::vector<Family> families, ConfidenceConfig cfg)
    : families_(std::move(families)), cfg_(cfg) {
  TRACON_REQUIRE(!families_.empty(), "confidence ensemble needs >= 1 family");
  TRACON_REQUIRE(cfg_.window >= 1, "confidence window must be >= 1");
  TRACON_REQUIRE(cfg_.error_threshold > 0.0,
                 "confidence error threshold must be positive");
  TRACON_REQUIRE(cfg_.default_error >= 0.0,
                 "confidence default error must be >= 0");
  TRACON_REQUIRE(cfg_.epsilon > 0.0, "confidence epsilon must be positive");
  for (const Family& f : families_) {
    TRACON_REQUIRE(f.predictor != nullptr, "family predictor must be non-null");
    TRACON_REQUIRE(!f.name.empty(), "family name must be non-empty");
    TRACON_REQUIRE(f.predictor->num_apps() == families_[0].predictor->num_apps(),
                   "confidence families disagree on the application set");
  }
  runtime_windows_.assign(families_.size(),
                          obs::WindowedAccuracy(cfg_.window));
  iops_windows_.assign(families_.size(), obs::WindowedAccuracy(cfg_.window));
  runtime_weights_.assign(families_.size(), 0.0);
  iops_weights_.assign(families_.size(), 0.0);
}

std::size_t ConfidenceWeightedPredictor::num_apps() const {
  return families_[0].predictor->num_apps();
}

double ConfidenceWeightedPredictor::predict_runtime(
    std::size_t task, const std::optional<std::size_t>& neighbour) const {
  refresh();
  double blended = 0.0;
  for (std::size_t f = 0; f < families_.size(); ++f) {
    if (runtime_weights_[f] <= 0.0) continue;
    blended +=
        runtime_weights_[f] * families_[f].predictor->predict_runtime(
                                  task, neighbour);
  }
  TRACON_CHECK_FINITE(blended, "blended predicted runtime");
  return blended;
}

double ConfidenceWeightedPredictor::predict_iops(
    std::size_t task, const std::optional<std::size_t>& neighbour) const {
  refresh();
  double blended = 0.0;
  for (std::size_t f = 0; f < families_.size(); ++f) {
    if (iops_weights_[f] <= 0.0) continue;
    blended +=
        iops_weights_[f] * families_[f].predictor->predict_iops(task,
                                                                neighbour);
  }
  TRACON_CHECK_FINITE(blended, "blended predicted IOPS");
  return blended;
}

namespace {

/// Weighted accumulate shared by the two ensemble batch paths. The
/// family loop is outermost and the per-query additions happen in
/// family order with the exact same operands as the scalar path, so
/// batched and scalar blends are bit-identical.
template <typename BatchFn>
void blend_batch(std::span<const PredictQuery> queries, std::span<double> out,
                 const std::vector<double>& weights, std::size_t families,
                 std::vector<double>& scratch, const BatchFn& family_batch,
                 const char* what) {
  TRACON_REQUIRE(queries.size() == out.size(),
                 "batch output span size mismatch");
  std::fill(out.begin(), out.end(), 0.0);
  scratch.resize(queries.size());
  for (std::size_t f = 0; f < families; ++f) {
    if (weights[f] <= 0.0) continue;
    family_batch(f, queries, std::span<double>(scratch));
    for (std::size_t i = 0; i < queries.size(); ++i)
      out[i] += weights[f] * scratch[i];
  }
  for (double v : out) TRACON_CHECK_FINITE(v, what);
}

}  // namespace

void ConfidenceWeightedPredictor::predict_runtime_batch(
    std::span<const PredictQuery> queries, std::span<double> out) const {
  refresh();
  blend_batch(
      queries, out, runtime_weights_, families_.size(), batch_scratch_,
      [&](std::size_t f, std::span<const PredictQuery> q,
          std::span<double> o) {
        families_[f].predictor->predict_runtime_batch(q, o);
      },
      "blended predicted runtime");
}

void ConfidenceWeightedPredictor::predict_iops_batch(
    std::span<const PredictQuery> queries, std::span<double> out) const {
  refresh();
  blend_batch(
      queries, out, iops_weights_, families_.size(), batch_scratch_,
      [&](std::size_t f, std::span<const PredictQuery> q,
          std::span<double> o) {
        families_[f].predictor->predict_iops_batch(q, o);
      },
      "blended predicted IOPS");
}

void ConfidenceWeightedPredictor::begin_round(double now_s) const {
  (void)now_s;
  refresh();
  if (metrics_ == nullptr) return;
  // Weight gauges are stamped per round, not per prediction, so the
  // exported value is the blend the round's decisions actually used.
  for (std::size_t f = 0; f < families_.size(); ++f) {
    const std::string prefix = "sched.confidence." + families_[f].name;
    metrics_->gauge(prefix + ".runtime_weight").set(runtime_weights_[f]);
    metrics_->gauge(prefix + ".iops_weight").set(iops_weights_[f]);
  }
}

void ConfidenceWeightedPredictor::on_completion(
    std::size_t app, const std::optional<std::size_t>& neighbour,
    double actual_runtime_s, double actual_iops) {
  for (std::size_t f = 0; f < families_.size(); ++f) {
    const Predictor& p = *families_[f].predictor;
    runtime_windows_[f].record(p.predict_runtime(app, neighbour),
                               actual_runtime_s);
    iops_windows_[f].record(p.predict_iops(app, neighbour), actual_iops);
  }
  stale_ = true;
  ++epoch_;
}

const std::string& ConfidenceWeightedPredictor::family_name(
    std::size_t family) const {
  TRACON_REQUIRE(family < families_.size(), "family index out of range");
  return families_[family].name;
}

const Predictor& ConfidenceWeightedPredictor::family_predictor(
    std::size_t family) const {
  TRACON_REQUIRE(family < families_.size(), "family index out of range");
  return *families_[family].predictor;
}

const obs::WindowedAccuracy& ConfidenceWeightedPredictor::runtime_window(
    std::size_t family) const {
  TRACON_REQUIRE(family < runtime_windows_.size(),
                 "family index out of range");
  return runtime_windows_[family];
}

const obs::WindowedAccuracy& ConfidenceWeightedPredictor::iops_window(
    std::size_t family) const {
  TRACON_REQUIRE(family < iops_windows_.size(), "family index out of range");
  return iops_windows_[family];
}

double ConfidenceWeightedPredictor::runtime_weight(std::size_t family) const {
  TRACON_REQUIRE(family < families_.size(), "family index out of range");
  refresh();
  return runtime_weights_[family];
}

double ConfidenceWeightedPredictor::iops_weight(std::size_t family) const {
  TRACON_REQUIRE(family < families_.size(), "family index out of range");
  refresh();
  return iops_weights_[family];
}

std::vector<double> ConfidenceWeightedPredictor::channel_weights(
    const std::vector<obs::WindowedAccuracy>& windows) const {
  const std::size_t n = families_.size();
  std::vector<double> weights(n, 0.0);
  if (!cfg_.adapt) {
    // Static blend: the A/B baseline ignores the windows entirely.
    for (double& w : weights) w = 1.0 / static_cast<double>(n);
    return weights;
  }
  std::vector<double> errors(n, cfg_.default_error);
  std::vector<bool> qualified(n, true);
  for (std::size_t f = 0; f < n; ++f) {
    if (windows[f].size() < cfg_.min_samples) continue;
    errors[f] = windows[f].mean_abs_error();
    // Only a warmed-up window can disqualify its family: kicking a
    // family out on one or two unlucky samples would thrash the blend.
    qualified[f] = errors[f] <= cfg_.error_threshold;
  }
  bool any_qualified = false;
  for (std::size_t f = 0; f < n; ++f) any_qualified |= qualified[f];
  if (!any_qualified) {
    // Every family is over the threshold: fall back to the single
    // best-performing one (first wins ties, deterministically).
    std::size_t best = 0;
    double best_err = std::numeric_limits<double>::infinity();
    for (std::size_t f = 0; f < n; ++f) {
      if (errors[f] < best_err) {
        best_err = errors[f];
        best = f;
      }
    }
    qualified[best] = true;
  }
  double sum = 0.0;
  for (std::size_t f = 0; f < n; ++f) {
    if (!qualified[f]) continue;
    weights[f] = 1.0 / (cfg_.epsilon + errors[f]);
    sum += weights[f];
  }
  TRACON_ASSERT(sum > 0.0, "confidence weights sum to zero");
  for (double& w : weights) w /= sum;
  return weights;
}

void ConfidenceWeightedPredictor::refresh() const {
  if (!stale_) return;
  runtime_weights_ = channel_weights(runtime_windows_);
  iops_weights_ = channel_weights(iops_windows_);
  stale_ = false;
}

}  // namespace tracon::sched
