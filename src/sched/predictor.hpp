// Prediction interface the schedulers consult, and its main
// implementations: model-driven (TRACON's interference models), oracle
// (the measured ground truth, for upper-bound ablations), and the
// confidence-weighted ensemble that blends model families by their
// live windowed accuracy.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "model/factory.hpp"
#include "monitor/profile.hpp"
#include "obs/accuracy.hpp"
#include "stats/matrix.hpp"

namespace tracon::obs {
class MetricsRegistry;
}

namespace tracon::sched {

/// One element of a batched prediction request: task class placed next
/// to `neighbour` (nullopt = idle machine). The schedulers' inner loops
/// build spans of these over the class-level cluster view instead of
/// issuing one virtual call per (task, slot) pair.
struct PredictQuery {
  std::size_t task = 0;
  std::optional<std::size_t> neighbour;
};

/// Predicts a task's performance when co-located with a neighbour
/// application class (nullopt = idle neighbour). App classes index a
/// fixed application set shared with the cluster simulator.
class Predictor {
 public:
  virtual ~Predictor() = default;
  virtual std::size_t num_apps() const = 0;
  virtual double predict_runtime(
      std::size_t task, const std::optional<std::size_t>& neighbour) const = 0;
  virtual double predict_iops(
      std::size_t task, const std::optional<std::size_t>& neighbour) const = 0;

  /// Batched prediction over `queries.size()` (task, neighbour) pairs;
  /// `out` must be the same length. Implementations MUST produce
  /// bit-identical values to the scalar calls in query order — the
  /// schedulers' placements (and therefore the determinism contract)
  /// depend on it. The default is the scalar loop; table-backed
  /// predictors override it to skip the per-call virtual dispatch, and
  /// ensembles hoist their per-round weight computation out of the
  /// loop.
  virtual void predict_runtime_batch(std::span<const PredictQuery> queries,
                                     std::span<double> out) const;
  virtual void predict_iops_batch(std::span<const PredictQuery> queries,
                                  std::span<double> out) const;

  /// Round boundary hook: batch schedulers (MIX) call this once per
  /// scheduling round before issuing the round's predictions, so
  /// adaptive predictors refresh their state exactly once per round and
  /// every in-round query sees consistent weights. Default no-op.
  virtual void begin_round(double now_s) const { (void)now_s; }

  /// Model epoch: monotone counter that advances whenever the
  /// predictor's answers may change (retraining, confidence-weight
  /// updates). Memoization layers (sched::PredictionCache,
  /// sched::CandidateIndex) key their cached values on it and
  /// invalidate on a bump. Immutable predictors (TablePredictor) stay
  /// at epoch 0 forever, which is what makes their caches shareable
  /// across a whole sharded run.
  virtual std::uint64_t model_epoch() const { return 0; }
};

/// Feedback seam between the simulator and adaptive predictors: the
/// dynamic scenario reports every completed task's realized performance
/// together with the neighbour it was placed against, which is what a
/// predictor needs to score its own placement-time forecasts.
class CompletionObserver {
 public:
  virtual ~CompletionObserver() = default;
  virtual void on_completion(std::size_t app,
                             const std::optional<std::size_t>& neighbour,
                             double actual_runtime_s, double actual_iops) = 0;
};

/// Dense prediction table — the common backing store. Both entries in a
/// row are precomputed for every (task, neighbour) pair, so scheduler
/// queries are O(1) lookups.
class TablePredictor final : public Predictor {
 public:
  /// runtime/iops are (num_apps x num_apps+1) matrices; column j<num_apps
  /// is neighbour class j, the last column is the idle neighbour.
  TablePredictor(stats::Matrix runtime, stats::Matrix iops);

  std::size_t num_apps() const override { return runtime_.rows(); }
  double predict_runtime(
      std::size_t task,
      const std::optional<std::size_t>& neighbour) const override;
  double predict_iops(
      std::size_t task,
      const std::optional<std::size_t>& neighbour) const override;

  /// Vectorized table lookups: one range check per query, no virtual
  /// dispatch inside the loop.
  void predict_runtime_batch(std::span<const PredictQuery> queries,
                             std::span<double> out) const override;
  void predict_iops_batch(std::span<const PredictQuery> queries,
                          std::span<double> out) const override;

  /// Builds the table by evaluating trained per-application models on
  /// the application profiles (models[i] predicts application i).
  static TablePredictor from_models(
      const std::vector<model::ModelPair>& models,
      const std::vector<monitor::AppProfile>& profiles);

 private:
  stats::Matrix runtime_;
  stats::Matrix iops_;
};

/// Confidence-weighting knobs. Defaults match DESIGN.md §6e.
struct ConfidenceConfig {
  /// Completions per (family, response) rolling error window.
  std::size_t window = 64;
  /// A family whose windowed mean |relative error| exceeds this is
  /// down-weighted to zero for that response.
  double error_threshold = 0.5;
  /// Below this many windowed samples a family is scored at
  /// `default_error` instead of its (noisy) measured error.
  std::size_t min_samples = 8;
  /// Assumed error while a window is still warming up.
  double default_error = 0.15;
  /// Weight smoothing: weight = 1 / (epsilon + error).
  double epsilon = 0.05;
  /// When false the ensemble is frozen at equal weights — the static
  /// blend the `--confidence-weighting` flag A/B-compares against.
  /// Windows are still fed so telemetry stays comparable.
  bool adapt = true;
};

/// Ensemble over named model families (each backed by any Predictor)
/// that blends per-response predictions by live confidence: families
/// are weighted inversely to their rolling windowed error, a family
/// whose windowed error crosses the threshold is dropped from the
/// blend, and if every family crosses it the single best-performing
/// family is used alone. Implements CompletionObserver so the dynamic
/// scenario can feed realized outcomes back (the paper's adaptation
/// loop driven by accuracy instrumentation).
class ConfidenceWeightedPredictor final : public Predictor,
                                          public CompletionObserver {
 public:
  struct Family {
    std::string name;           ///< metric-path label ("nlm", "oracle")
    const Predictor* predictor;  ///< not owned; must outlive the ensemble
  };

  explicit ConfidenceWeightedPredictor(std::vector<Family> families,
                                       ConfidenceConfig cfg = {});

  std::size_t num_apps() const override;
  double predict_runtime(
      std::size_t task,
      const std::optional<std::size_t>& neighbour) const override;
  double predict_iops(
      std::size_t task,
      const std::optional<std::size_t>& neighbour) const override;

  /// Batched blend: the per-round weight refresh happens once per call
  /// instead of once per query, and each family's table is walked in
  /// one pass. Accumulation order matches the scalar path family by
  /// family, so results are bit-identical to per-query calls.
  void predict_runtime_batch(std::span<const PredictQuery> queries,
                             std::span<double> out) const override;
  void predict_iops_batch(std::span<const PredictQuery> queries,
                          std::span<double> out) const override;

  /// Recomputes cached weights from the current windows and, when a
  /// registry is attached, stamps `sched.confidence.<family>.
  /// {runtime_weight,iops_weight}` gauges for the round.
  void begin_round(double now_s) const override;

  /// Scores every family's forecast for (app, neighbour) against the
  /// realized outcome and marks the cached weights stale.
  void on_completion(std::size_t app,
                     const std::optional<std::size_t>& neighbour,
                     double actual_runtime_s, double actual_iops) override;

  /// Every completion feeds the error windows and so can shift the
  /// blend weights: the epoch advances with each one, invalidating any
  /// memoized predictions.
  std::uint64_t model_epoch() const override { return epoch_; }

  std::size_t num_families() const { return families_.size(); }
  const std::string& family_name(std::size_t family) const;
  /// The underlying per-family predictor — the decision-log probe
  /// replays each candidate through it to record what every family
  /// would have predicted alongside the blended score.
  const Predictor& family_predictor(std::size_t family) const;
  const obs::WindowedAccuracy& runtime_window(std::size_t family) const;
  const obs::WindowedAccuracy& iops_window(std::size_t family) const;
  /// Current blend weights (normalized; refreshed if stale).
  double runtime_weight(std::size_t family) const;
  double iops_weight(std::size_t family) const;

  /// Attaches (or detaches) the registry receiving per-round weight
  /// gauges. Not owned.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  const ConfidenceConfig& config() const { return cfg_; }

 private:
  void refresh() const;
  std::vector<double> channel_weights(
      const std::vector<obs::WindowedAccuracy>& windows) const;

  std::vector<Family> families_;
  ConfidenceConfig cfg_;
  std::vector<obs::WindowedAccuracy> runtime_windows_;
  std::vector<obs::WindowedAccuracy> iops_windows_;
  obs::MetricsRegistry* metrics_ = nullptr;
  mutable std::vector<double> runtime_weights_;
  mutable std::vector<double> iops_weights_;
  mutable bool stale_ = true;
  std::uint64_t epoch_ = 0;
  /// Per-family scratch for the batch accumulate; reused across calls
  /// so steady-state batching allocates nothing.
  mutable std::vector<double> batch_scratch_;
};

}  // namespace tracon::sched
