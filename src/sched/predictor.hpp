// Prediction interface the schedulers consult, and its two main
// implementations: model-driven (TRACON's interference models) and
// oracle (the measured ground truth, for upper-bound ablations).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "model/factory.hpp"
#include "monitor/profile.hpp"
#include "stats/matrix.hpp"

namespace tracon::sched {

/// Predicts a task's performance when co-located with a neighbour
/// application class (nullopt = idle neighbour). App classes index a
/// fixed application set shared with the cluster simulator.
class Predictor {
 public:
  virtual ~Predictor() = default;
  virtual std::size_t num_apps() const = 0;
  virtual double predict_runtime(
      std::size_t task, const std::optional<std::size_t>& neighbour) const = 0;
  virtual double predict_iops(
      std::size_t task, const std::optional<std::size_t>& neighbour) const = 0;
};

/// Dense prediction table — the common backing store. Both entries in a
/// row are precomputed for every (task, neighbour) pair, so scheduler
/// queries are O(1) lookups.
class TablePredictor final : public Predictor {
 public:
  /// runtime/iops are (num_apps x num_apps+1) matrices; column j<num_apps
  /// is neighbour class j, the last column is the idle neighbour.
  TablePredictor(stats::Matrix runtime, stats::Matrix iops);

  std::size_t num_apps() const override { return runtime_.rows(); }
  double predict_runtime(
      std::size_t task,
      const std::optional<std::size_t>& neighbour) const override;
  double predict_iops(
      std::size_t task,
      const std::optional<std::size_t>& neighbour) const override;

  /// Builds the table by evaluating trained per-application models on
  /// the application profiles (models[i] predicts application i).
  static TablePredictor from_models(
      const std::vector<model::ModelPair>& models,
      const std::vector<monitor::AppProfile>& profiles);

 private:
  stats::Matrix runtime_;
  stats::Matrix iops_;
};

}  // namespace tracon::sched
