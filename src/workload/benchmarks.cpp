#include "workload/benchmarks.hpp"

namespace tracon::workload {

namespace {

virt::AppBehavior make(std::string name, double runtime, double cpu,
                       double reads, double writes, double kb, double sigma,
                       double burst, double period) {
  virt::AppBehavior a;
  a.name = std::move(name);
  a.solo_runtime_s = runtime;
  a.cpu_util = cpu;
  a.read_iops = reads;
  a.write_iops = writes;
  a.request_kb = kb;
  a.sequentiality = sigma;
  a.burstiness = burst;
  a.burst_period_s = period;
  return a;
}

std::vector<virt::AppBehavior> build_benchmarks() {
  std::vector<virt::AppBehavior> apps;
  apps.reserve(8);
  // Postmark-style mail server: many tiny create/read/write/delete ops,
  // random access, lowest aggregate IOPS (rank 1).
  apps.push_back(make("email", 60, 0.25, 20, 28, 4, 0.30, 0.30, 3.0));
  // FileBench web profile: 16 KiB reads over 10k files plus a proxy-log
  // append; bursty open/read/close cycles (rank 2).
  apps.push_back(make("web", 48, 0.30, 62, 8, 16, 0.55, 0.55, 2.0));
  // blastp: protein search, CPU-dominant scoring with scans over the
  // 11 GB NR database (rank 3).
  apps.push_back(make("blastp", 100, 0.55, 86, 4, 128, 0.80, 0.20, 6.0));
  // Linux kernel compile: alternating parse/codegen and object-file
  // writes over 1,358 small files; random and strongly phased (rank 4).
  apps.push_back(make("compile", 84, 0.45, 86, 39, 16, 0.45, 0.60, 3.0));
  // freqmine: frequent-itemset mining over a 206 MB file (rank 5).
  apps.push_back(make("freqmine", 72, 0.50, 133, 8, 64, 0.70, 0.40, 5.0));
  // blastn: nucleotide search streaming the 12 GB NT database (rank 6).
  apps.push_back(make("blastn", 96, 0.42, 210, 8, 128, 0.90, 0.25, 6.0));
  // dedup: pipelined compression/deduplication, mixed read/write (rank 7).
  apps.push_back(make("dedup", 60, 0.40, 172, 140, 32, 0.85, 0.45, 2.5));
  // video: H.264 encoding of a 1.5 GB file, mainly sequential, highest
  // IOPS of the set (rank 8).
  apps.push_back(make("video", 66, 0.45, 374, 125, 64, 0.95, 0.10, 8.0));
  return apps;
}

}  // namespace

const std::vector<virt::AppBehavior>& paper_benchmarks() {
  static const std::vector<virt::AppBehavior> apps = build_benchmarks();
  return apps;
}

std::size_t benchmark_count() { return paper_benchmarks().size(); }

std::optional<virt::AppBehavior> benchmark_by_name(const std::string& name) {
  for (const auto& a : paper_benchmarks())
    if (a.name == name) return a;
  return std::nullopt;
}

virt::AppBehavior calc_app() {
  return make("calc", 100, 0.95, 0, 0, 64, 0.5, 0.0, 4.0);
}

virt::AppBehavior seqread_app() {
  return make("seqread", 100, 0.15, 800, 0, 64, 0.95, 0.0, 4.0);
}

virt::AppBehavior cpu_high_app() {
  return make("cpu-high", 100, 0.95, 0, 0, 64, 0.5, 0.0, 4.0);
}

virt::AppBehavior io_high_app() {
  return make("io-high", 100, 0.15, 800, 0, 64, 0.95, 0.0, 4.0);
}

virt::AppBehavior cpu_io_medium_app() {
  return make("cpu-io-medium", 100, 0.40, 30, 30, 64, 0.75, 0.0, 4.0);
}

virt::AppBehavior cpu_io_high_app() {
  return make("cpu-io-high", 100, 0.90, 150, 350, 64, 0.85, 0.0, 4.0);
}

}  // namespace tracon::workload
