#include "workload/mixes.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "workload/benchmarks.hpp"

namespace tracon::workload {

std::string mix_name(MixKind kind) {
  switch (kind) {
    case MixKind::kLight: return "light";
    case MixKind::kMedium: return "medium";
    case MixKind::kHeavy: return "heavy";
    case MixKind::kUniform: return "uniform";
  }
  return "unknown";
}

double mix_mean(MixKind kind) {
  switch (kind) {
    case MixKind::kLight: return 2.5;
    case MixKind::kMedium: return 4.0;
    case MixKind::kHeavy: return 5.5;
    case MixKind::kUniform: return 4.5;
  }
  return 4.5;
}

std::size_t sample_benchmark_index(MixKind kind, Rng& rng, double stddev) {
  TRACON_REQUIRE(stddev > 0.0, "mix stddev must be positive");
  const auto n = static_cast<double>(benchmark_count());
  if (kind == MixKind::kUniform) {
    return rng.index(benchmark_count());
  }
  double rank = rng.normal(mix_mean(kind), stddev);
  rank = std::clamp(std::round(rank), 1.0, n);
  return static_cast<std::size_t>(rank) - 1;  // rank 1 -> index 0
}

std::vector<std::size_t> sample_task_indices(MixKind kind, std::size_t count,
                                             Rng& rng, double stddev) {
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(sample_benchmark_index(kind, rng, stddev));
  return out;
}

std::vector<virt::AppBehavior> sample_tasks(MixKind kind, std::size_t count,
                                            Rng& rng, double stddev) {
  const auto& apps = paper_benchmarks();
  std::vector<virt::AppBehavior> out;
  out.reserve(count);
  for (std::size_t idx : sample_task_indices(kind, count, rng, stddev))
    out.push_back(apps[idx]);
  return out;
}

}  // namespace tracon::workload
