// The profiling workload generator of Section 3.1.
//
// The paper exercises CPU and storage with five intensity levels each
// (0%, 25%, 50%, 75%, 100%) for CPU utilization, read rate, and write
// rate, producing 5 x 5 x 5 = 125 background workloads used to profile
// every application's interference response (the all-zero combination
// doubles as the no-interference baseline).
#pragma once

#include <vector>

#include "virt/app_behavior.hpp"

namespace tracon::workload {

struct SyntheticConfig {
  int levels = 5;             ///< intensity steps per dimension
  double max_cpu = 0.95;      ///< CPU utilization at 100%
  double max_read_iops = 420; ///< read rate at 100%
  double max_write_iops = 260;///< write rate at 100%
  double runtime_s = 60.0;    ///< nominal loop length (backgrounds recur)
};

/// All levels^3 synthetic background workloads, ordered CPU-major then
/// read then write. Names encode the levels, e.g. "synth-c2r0w4".
std::vector<virt::AppBehavior> synthetic_workloads(
    const SyntheticConfig& cfg = {});

/// The single synthetic workload at the given intensity levels
/// (each in [0, levels-1]).
virt::AppBehavior synthetic_workload(int cpu_level, int read_level,
                                     int write_level,
                                     const SyntheticConfig& cfg = {});

}  // namespace tracon::workload
