#include "workload/synthetic.hpp"

#include <string>

#include "util/error.hpp"

namespace tracon::workload {

virt::AppBehavior synthetic_workload(int cpu_level, int read_level,
                                     int write_level,
                                     const SyntheticConfig& cfg) {
  TRACON_REQUIRE(cfg.levels >= 2, "need at least two intensity levels");
  auto in_range = [&](int l) { return l >= 0 && l < cfg.levels; };
  TRACON_REQUIRE(
      in_range(cpu_level) && in_range(read_level) && in_range(write_level),
      "intensity level out of range");

  double denom = static_cast<double>(cfg.levels - 1);
  virt::AppBehavior a;
  a.name = "synth-c" + std::to_string(cpu_level) + "r" +
           std::to_string(read_level) + "w" + std::to_string(write_level);
  a.solo_runtime_s = cfg.runtime_s;
  a.cpu_util = cfg.max_cpu * static_cast<double>(cpu_level) / denom;
  a.read_iops = cfg.max_read_iops * static_cast<double>(read_level) / denom;
  a.write_iops =
      cfg.max_write_iops * static_cast<double>(write_level) / denom;
  // The generator varies request size and access pattern across
  // workloads, assigned by a fixed hash of the workload index so the
  // pattern is NOT inferable from the three intensity levels. The
  // profiled Dom0 utilization therefore carries information the raw
  // request rates do not — the reason the paper's models need the
  // global-CPU feature (see DESIGN.md).
  static constexpr double kKbPattern[3] = {16.0, 64.0, 256.0};
  static constexpr double kSigmaPattern[3] = {0.4, 0.7, 0.9};
  unsigned idx = static_cast<unsigned>(cpu_level * cfg.levels * cfg.levels +
                                       read_level * cfg.levels + write_level);
  unsigned h = idx * 2654435761u;  // Knuth multiplicative hash
  a.request_kb = kKbPattern[(h >> 8) % 3];
  a.sequentiality = kSigmaPattern[(h >> 16) % 3];
  a.burstiness = 0.0;  // the generator issues steadily-paced requests
  return a;
}

std::vector<virt::AppBehavior> synthetic_workloads(
    const SyntheticConfig& cfg) {
  std::vector<virt::AppBehavior> out;
  out.reserve(static_cast<std::size_t>(cfg.levels) * cfg.levels * cfg.levels);
  for (int c = 0; c < cfg.levels; ++c)
    for (int r = 0; r < cfg.levels; ++r)
      for (int w = 0; w < cfg.levels; ++w)
        out.push_back(synthetic_workload(c, r, w, cfg));
  return out;
}

}  // namespace tracon::workload
