// Mixed I/O workload generation (Section 4.1, "Mixed I/O workload").
//
// The paper sorts the eight benchmarks by I/O intensity (ranks 1..8,
// Table 3) and draws task ranks from Gaussian distributions with means
// 2.5 (light), 4 (medium), and 5.5 (heavy). The paper does not state the
// standard deviation; we use 1.5 and clamp to [1, 8] (see DESIGN.md).
#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"
#include "virt/app_behavior.hpp"

namespace tracon::workload {

enum class MixKind { kLight, kMedium, kHeavy, kUniform };

/// Human-readable mix name ("light", "medium", "heavy", "uniform").
std::string mix_name(MixKind kind);

/// Gaussian mean of the rank distribution for the mix (uniform: n/a).
double mix_mean(MixKind kind);

/// Draws one benchmark index in [0, 8) according to the mix.
std::size_t sample_benchmark_index(MixKind kind, Rng& rng,
                                   double stddev = 1.5);

/// Draws `count` tasks (benchmark indices) for the mix.
std::vector<std::size_t> sample_task_indices(MixKind kind, std::size_t count,
                                             Rng& rng, double stddev = 1.5);

/// Same, materialized as AppBehavior copies from paper_benchmarks().
std::vector<virt::AppBehavior> sample_tasks(MixKind kind, std::size_t count,
                                            Rng& rng, double stddev = 1.5);

}  // namespace tracon::workload
