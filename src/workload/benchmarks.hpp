// The paper's application set, expressed as AppBehavior parameterizations
// calibrated on the simulated testbed.
//
// Table 3 of the paper fixes the I/O-intensity ranking:
//   email(1) < web(2) < blastp(3) < compile(4) < freqmine(5)
//   < blastn(6) < dedup(7) < video(8)
// The behavioural parameters below preserve that ranking, the CPU/IO
// character described in the paper (video mainly sequential, compile and
// web bursty/random, blast* CPU-heavy), and solo-feasibility on the
// reference host. Micro applications (Calc, SeqRead, and the four
// Table 1 backgrounds) are also provided.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "virt/app_behavior.hpp"

namespace tracon::workload {

/// The eight data-intensive benchmarks of Table 3, in I/O-intensity
/// rank order (index 0 = rank 1 = email, ..., index 7 = rank 8 = video).
const std::vector<virt::AppBehavior>& paper_benchmarks();

/// Number of paper benchmarks (8).
std::size_t benchmark_count();

/// Lookup by name ("email", "web", "blastp", "compile", "freqmine",
/// "blastn", "dedup", "video"); nullopt if unknown.
std::optional<virt::AppBehavior> benchmark_by_name(const std::string& name);

// ---- Table 1 micro applications --------------------------------------

/// CPU-intensive calculation loop (App1 row 1).
virt::AppBehavior calc_app();
/// Large sequential file reader (App1 row 2).
virt::AppBehavior seqread_app();
/// App2 columns of Table 1.
virt::AppBehavior cpu_high_app();
virt::AppBehavior io_high_app();
virt::AppBehavior cpu_io_medium_app();
virt::AppBehavior cpu_io_high_app();

}  // namespace tracon::workload
