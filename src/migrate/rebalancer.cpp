#include "migrate/rebalancer.hpp"

#include <algorithm>
#include <utility>

#include "sched/decision_probe.hpp"
#include "util/error.hpp"

namespace tracon::migrate {

Rebalancer::Rebalancer(const sched::Predictor& predictor,
                       const RebalanceConfig& cfg)
    : predictor_(predictor), cfg_(cfg), cost_(cfg.cost) {
  TRACON_REQUIRE(cfg_.interval_s > 0.0,
                 "rebalance interval must be positive");
  TRACON_REQUIRE(cfg_.max_moves_per_round >= 1,
                 "rebalancer needs a positive per-round move budget");
  TRACON_REQUIRE(cfg_.min_benefit_s >= 0.0,
                 "rebalance hysteresis must be non-negative");
  TRACON_REQUIRE(cfg_.slowdown_threshold >= 1.0,
                 "slowdown threshold below 1 would flag healthy cells");
  TRACON_REQUIRE(cfg_.signal_window >= 1, "signal window must hold samples");
}

void Rebalancer::observe_completion(
    std::size_t app, const std::optional<std::size_t>& neighbour,
    double runtime_s, double solo_runtime_s) {
  if (solo_runtime_s <= 0.0) return;
  auto [it, inserted] = cells_.try_emplace(PairKey{app, neighbour},
                                           cfg_.signal_window);
  // |relative_error(runtime, solo)| == slowdown - 1 whenever the task
  // ran slower than solo, which is the direction the flagging cares
  // about.
  it->second.record(runtime_s, solo_runtime_s);
  ++observed_;
}

double Rebalancer::cell_slowdown(
    std::size_t app, const std::optional<std::size_t>& neighbour) const {
  auto it = cells_.find(PairKey{app, neighbour});
  if (it == cells_.end() || it->second.size() == 0) return 1.0;
  return 1.0 + it->second.mean_abs_error();
}

std::vector<MigrationPlan> Rebalancer::plan(
    double now, const std::vector<RunningTaskView>& running,
    const sched::ClusterCounts& counts,
    const obs::AttributionReport* attribution) const {
  (void)now;  // plans depend on state, not on the clock
  std::vector<MigrationPlan> plans;
  if (running.empty()) return plans;

  // --- Candidate cells, from the live signals only. The map's key
  // order makes every later walk deterministic.
  std::map<PairKey, double> flagged;  // cell -> badness (mean slowdown)
  for (const auto& [key, ring] : cells_) {
    if (ring.size() < cfg_.min_cell_samples) continue;
    double slowdown = 1.0 + ring.mean_abs_error();
    if (slowdown > cfg_.slowdown_threshold) flagged[key] = slowdown;
  }
  if (attribution != nullptr) {
    for (const auto& [key, cell] : attribution->pairs) {
      if (cell.count < cfg_.min_cell_samples) continue;
      if (cell.mean_slowdown() <= cfg_.slowdown_threshold) continue;
      double& badness = flagged[key];
      badness = std::max(badness, cell.mean_slowdown());
    }
    const std::size_t top =
        std::min(cfg_.top_mispredict_rows, attribution->mispredict_order.size());
    for (std::size_t i = 0; i < top; ++i) {
      const obs::AttributionRow& row =
          attribution->rows[attribution->mispredict_order[i]];
      double& badness = flagged[PairKey{row.app, row.neighbour}];
      badness = std::max(badness, row.realized_slowdown);
    }
  }
  if (flagged.empty()) return plans;

  // --- Rank the running tasks sitting in flagged cells, worst cell
  // first, ties broken by task id so the ordering is reproducible.
  struct Candidate {
    std::size_t view = 0;
    double badness = 0.0;
  };
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < running.size(); ++i) {
    const RunningTaskView& v = running[i];
    auto it = flagged.find(PairKey{v.app, v.neighbour});
    if (it == flagged.end()) continue;
    if (v.solo_runtime_s <= 0.0 || v.remaining_solo_s <= 0.0) continue;
    candidates.push_back({i, it->second});
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](const Candidate& a, const Candidate& b) {
              if (a.badness != b.badness) return a.badness > b.badness;
              return running[a.view].task_id < running[b.view].task_id;
            });

  // --- Score destinations against a working copy of the free-slot
  // view so one round's moves see each other's reservations.
  sched::ClusterCounts state = counts;
  std::vector<std::optional<std::size_t>> slots;
  std::vector<double> scores;
  for (const Candidate& c : candidates) {
    if (plans.size() >= cfg_.max_moves_per_round) break;
    const RunningTaskView& v = running[c.view];
    sched::score_candidates(predictor_, v.app, state,
                            sched::Objective::kRuntime, true, &slots, &scores);
    bool have_best = false;
    std::size_t best = 0;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      // Moving into the same co-runner class buys nothing and risks
      // landing back on the source machine.
      if (slots[i] == v.neighbour) continue;
      if (!have_best || scores[i] < scores[best]) {
        best = i;
        have_best = true;
      }
    }
    if (!have_best) continue;

    const double frac = v.remaining_solo_s / v.solo_runtime_s;
    const double stay_s =
        frac * predictor_.predict_runtime(v.app, v.neighbour);
    const double cost_s = cost_.task_cost_s();
    const double move_s = frac * scores[best] + cost_s;
    const double margin = stay_s - move_s;
    if (margin <= cfg_.min_benefit_s) continue;

    MigrationPlan p;
    p.task_id = v.task_id;
    p.app = v.app;
    p.from_machine = v.machine;
    p.from_neighbour = v.neighbour;
    p.dest_neighbour = slots[best];
    p.predicted_stay_s = stay_s;
    p.predicted_move_s = move_s;
    p.downtime_s = cost_.config().downtime_s;
    p.copy_s = cost_.copy_duration_s();
    p.cost_s = cost_s;
    p.margin = margin;
    plans.push_back(p);

    // The source slot frees up; the destination slot is consumed.
    state.depart(v.app, v.neighbour);
    state.place(v.app, slots[best]);
  }
  return plans;
}

}  // namespace tracon::migrate
