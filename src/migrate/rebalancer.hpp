// Live rebalancing (ROADMAP "Live rebalancing via task/VM migration"):
// TRACON's schedulers place a task once and never revisit it, so a
// placement that turns bad after a workload-mix shift stays bad for the
// task's whole lifetime. The Rebalancer closes that loop. Every
// `interval_s` of virtual time the dynamic event loop hands it a
// snapshot of the running tasks and the live cluster view; it selects
// migration candidates from live signals only —
//   - degrading (app, co-runner) cells: a per-pair
//     obs::WindowedAccuracy ring over recently realized slowdowns,
//     fed by the completion path, flags cells whose rolling mean
//     slowdown exceeds a threshold;
//   - the worst-mispredict ranking and pair heatmap of an
//     obs::AttributionReport built from the run's own decision log
//     (obs::attribute), when decision recording is on —
// and moves a running task only when the predicted remaining time at
// the best alternative slot plus the full migration cost
// (virt::MigrationCostModel) beats staying put by at least
// `min_benefit_s`. Destination slots are scored through
// sched::score_candidates, the same batched-predictor path the
// schedulers and the decision-log probe use.
//
// Determinism: plan() is a pure function of the rebalancer's observed
// completions, the inputs, and the config — maps iterate in key order,
// ties break on task id, and nothing reads a clock — so per-shard
// rebalancing (each shard owns one Rebalancer over its own machines)
// keeps `--threads N` byte-identical to `--threads 1`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "obs/accuracy.hpp"
#include "obs/attribution.hpp"
#include "sched/cluster_counts.hpp"
#include "sched/predictor.hpp"
#include "virt/migration.hpp"

namespace tracon::migrate {

/// The event loop's snapshot of one running task, advanced to the
/// rebalance round's timestamp.
struct RunningTaskView {
  std::uint64_t task_id = 0;
  std::size_t app = 0;
  std::size_t machine = 0;
  std::optional<std::size_t> neighbour;  ///< current co-runner class
  double remaining_solo_s = 0.0;         ///< work left, solo seconds
  double solo_runtime_s = 0.0;           ///< full solo runtime of the app
  double started_s = 0.0;
};

/// One migration the rebalancer wants applied: move `task_id` off
/// `from_machine` to any machine of slot class `dest_neighbour`. The
/// simulator resolves the class to a concrete machine and records the
/// whole struct as a decision-log migration record.
struct MigrationPlan {
  std::uint64_t task_id = 0;
  std::size_t app = 0;
  std::size_t from_machine = 0;
  std::optional<std::size_t> from_neighbour;  ///< co-runner left behind
  std::optional<std::size_t> dest_neighbour;  ///< destination slot class
  double predicted_stay_s = 0.0;  ///< predicted remaining time in place
  double predicted_move_s = 0.0;  ///< at destination, cost included
  double downtime_s = 0.0;
  double copy_s = 0.0;
  double cost_s = 0.0;
  double margin = 0.0;  ///< predicted_stay_s - predicted_move_s
};

struct RebalanceConfig {
  /// Virtual-time period between rebalance rounds (the CLI's
  /// `--rebalance-interval`).
  double interval_s = 60.0;
  /// Cap on migrations per round; keeps copy windows from piling up.
  std::size_t max_moves_per_round = 2;
  /// A move must beat staying put by at least this many predicted
  /// seconds — hysteresis against migration churn.
  double min_benefit_s = 1.0;
  /// A pair cell is "degrading" once its rolling mean realized
  /// slowdown exceeds this factor (1.15 = 15% over solo).
  double slowdown_threshold = 1.15;
  /// Minimum completions in a cell's window before it can be flagged.
  std::size_t min_cell_samples = 4;
  /// Capacity of each per-pair slowdown ring.
  std::size_t signal_window = 32;
  /// How many worst-mispredict rows of the attribution report flag
  /// their (app, co-runner) cell as a migration source.
  std::size_t top_mispredict_rows = 4;
  virt::MigrationCostConfig cost;
};

class Rebalancer {
 public:
  /// `predictor` is borrowed and must outlive the rebalancer; it is
  /// only read, via the same batched calls the schedulers issue.
  Rebalancer(const sched::Predictor& predictor, const RebalanceConfig& cfg);

  const RebalanceConfig& config() const { return cfg_; }
  const virt::MigrationCostModel& cost_model() const { return cost_; }

  /// Completion-path feed: realized slowdown of one finished task,
  /// keyed by its placement-time (app, co-runner) cell.
  void observe_completion(std::size_t app,
                          const std::optional<std::size_t>& neighbour,
                          double runtime_s, double solo_runtime_s);

  /// Rolling mean realized slowdown of a pair cell; 1.0 when the cell
  /// has no samples yet (no evidence of degradation).
  double cell_slowdown(std::size_t app,
                       const std::optional<std::size_t>& neighbour) const;

  /// Plans this round's migrations. `running` must be in a
  /// deterministic order (the simulator walks machines ascending,
  /// slot 0 before slot 1); `counts` is the live free-slot view;
  /// `attribution` may be null when decision recording is off.
  /// Pure: does not mutate the rebalancer.
  std::vector<MigrationPlan> plan(
      double now, const std::vector<RunningTaskView>& running,
      const sched::ClusterCounts& counts,
      const obs::AttributionReport* attribution) const;

  std::uint64_t completions_observed() const { return observed_; }

 private:
  using PairKey = std::pair<std::size_t, std::optional<std::size_t>>;

  const sched::Predictor& predictor_;
  RebalanceConfig cfg_;
  virt::MigrationCostModel cost_;
  /// Per-(app, co-runner) rings of recently realized slowdowns. The
  /// ring records |relative_error(runtime, solo)|, which for the
  /// slowed-down case equals slowdown - 1.
  std::map<PairKey, obs::WindowedAccuracy> cells_;
  std::uint64_t observed_ = 0;
};

}  // namespace tracon::migrate
