#include "monitor/profile.hpp"

namespace tracon::monitor {

AppProfile AppProfile::from_run_stats(const virt::VmRunStats& stats) {
  AppProfile p;
  p.domu_cpu = stats.avg_domu_cpu;
  p.dom0_cpu = stats.avg_dom0_cpu;
  p.reads_per_s = stats.reads_per_s;
  p.writes_per_s = stats.writes_per_s;
  return p;
}

const std::vector<std::string>& profile_feature_names() {
  static const std::vector<std::string> names = {"domu_cpu", "dom0_cpu",
                                                 "reads", "writes"};
  return names;
}

std::vector<double> concat_profiles(const AppProfile& vm1,
                                    const AppProfile& vm2) {
  std::vector<double> out;
  out.reserve(2 * kProfileDim);
  for (double v : vm1.to_array()) out.push_back(v);
  for (double v : vm2.to_array()) out.push_back(v);
  return out;
}

const std::vector<std::string>& pair_feature_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> n;
    for (const char* vm : {"vm1", "vm2"})
      for (const auto& f : profile_feature_names())
        n.push_back(std::string(vm) + "." + f);
    return n;
  }();
  return names;
}

}  // namespace tracon::monitor
