// Prediction-error drift detection for online model adaptation.
//
// Section 3.1: "TRACON collects statistics ... and keeps track of the
// prediction errors of the models. Upon the occurrence of some
// predefined events (e.g., a significant shift of the mean or a large
// surge in the variance), TRACON will start to build a new model."
//
// DriftDetector compares a reference window of relative prediction
// errors (established during stable operation) to the most recent
// window and flags a mean shift or a variance surge.
#pragma once

#include <cstddef>
#include <deque>

#include "util/summary.hpp"

namespace tracon::monitor {

struct DriftConfig {
  std::size_t reference_window = 50;  ///< samples forming the baseline
  std::size_t recent_window = 20;     ///< samples tested against it
  /// Mean shift threshold, in reference standard deviations
  /// (|mean_recent - mean_ref| > k * sd_ref).
  double mean_shift_sigmas = 3.0;
  /// Variance surge threshold (var_recent > k * var_ref).
  double variance_surge_factor = 4.0;
  /// Absolute floor so noise-free baselines do not trip on tiny shifts.
  double min_abs_shift = 0.05;
};

enum class DriftKind { kNone, kMeanShift, kVarianceSurge };

class DriftDetector {
 public:
  explicit DriftDetector(DriftConfig cfg = {});

  /// Feeds one relative prediction error; returns the drift verdict for
  /// the current windows (kNone until both windows have filled).
  DriftKind observe(double relative_error);

  /// Latest verdict without adding a sample.
  DriftKind state() const { return state_; }

  /// Forgets everything (call after the model is rebuilt).
  void reset();

  std::size_t reference_count() const { return reference_.size(); }
  std::size_t recent_count() const { return recent_.size(); }

 private:
  DriftKind evaluate() const;

  DriftConfig cfg_;
  std::deque<double> reference_;
  std::deque<double> recent_;
  DriftKind state_ = DriftKind::kNone;
};

}  // namespace tracon::monitor
