#include "monitor/monitor.hpp"

#include "util/error.hpp"

namespace tracon::monitor {

ResourceMonitor::ResourceMonitor(std::size_t num_vms, std::size_t window)
    : window_(window), windows_(num_vms) {
  TRACON_REQUIRE(num_vms > 0, "monitor needs at least one VM slot");
  TRACON_REQUIRE(window > 0, "monitor window must be positive");
}

void ResourceMonitor::observe(const virt::MonitorSample& sample) {
  TRACON_REQUIRE(sample.vm < windows_.size(), "sample VM out of range");
  auto& w = windows_[sample.vm];
  w.push_back(sample);
  while (w.size() > window_) w.pop_front();
}

void ResourceMonitor::observe_all(
    std::span<const virt::MonitorSample> samples) {
  for (const auto& s : samples) observe(s);
}

std::size_t ResourceMonitor::sample_count(std::size_t vm) const {
  TRACON_REQUIRE(vm < windows_.size(), "VM index out of range");
  return windows_[vm].size();
}

AppProfile ResourceMonitor::profile(std::size_t vm) const {
  TRACON_REQUIRE(vm < windows_.size(), "VM index out of range");
  const auto& w = windows_[vm];
  AppProfile p;
  if (w.empty()) return p;
  for (const auto& s : w) {
    p.domu_cpu += s.domu_cpu;
    p.dom0_cpu += s.dom0_cpu;
    p.reads_per_s += s.reads_per_s;
    p.writes_per_s += s.writes_per_s;
  }
  double inv = 1.0 / static_cast<double>(w.size());
  p.domu_cpu *= inv;
  p.dom0_cpu *= inv;
  p.reads_per_s *= inv;
  p.writes_per_s *= inv;
  return p;
}

void ResourceMonitor::reset(std::size_t vm) {
  TRACON_REQUIRE(vm < windows_.size(), "VM index out of range");
  windows_[vm].clear();
}

}  // namespace tracon::monitor
