// The application profile: the four controlled variables of Table 2.
//
// TRACON characterizes every application by (a) local CPU utilization in
// its guest domain, (b) global CPU utilization attributable to it in the
// driver domain (Dom0), (c) read requests per second, and (d) write
// requests per second. A pair of profiles (foreground, background) forms
// the eight controlled variables of the interference models.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "virt/host_sim.hpp"

namespace tracon::monitor {

inline constexpr std::size_t kProfileDim = 4;

struct AppProfile {
  double domu_cpu = 0.0;      ///< local CPU utilization in DomU (cores)
  double dom0_cpu = 0.0;      ///< global CPU utilization in Dom0 (cores)
  double reads_per_s = 0.0;   ///< read requests per second
  double writes_per_s = 0.0;  ///< write requests per second

  std::array<double, kProfileDim> to_array() const {
    return {domu_cpu, dom0_cpu, reads_per_s, writes_per_s};
  }

  /// Profile of an idle VM (all zeros) — the "no interference" neighbour.
  static AppProfile idle() { return {}; }

  /// Extracts a profile from a completed host-simulator run.
  static AppProfile from_run_stats(const virt::VmRunStats& stats);
};

/// Names of the four profile features, in to_array() order.
const std::vector<std::string>& profile_feature_names();

/// Concatenates two profiles into the 8-dimensional controlled-variable
/// vector (VM1 features first, then VM2).
std::vector<double> concat_profiles(const AppProfile& vm1,
                                    const AppProfile& vm2);

/// Names of the eight concatenated features ("vm1.cpu", ..., "vm2.w").
const std::vector<std::string>& pair_feature_names();

}  // namespace tracon::monitor
