// Task and resource monitor (the third TRACON component).
//
// On a real deployment this wraps xentop and iostat in Dom0; here it
// consumes the host simulator's MonitorSample stream. It maintains
// windowed averages per VM and produces AppProfiles for the prediction
// module, exactly as the paper's monitor feeds "application
// characteristics observed from the VMs" to the model and scheduler.
#pragma once

#include <deque>
#include <span>
#include <vector>

#include "monitor/profile.hpp"
#include "virt/host_sim.hpp"

namespace tracon::monitor {

/// Sliding-window resource monitor for a fixed number of VM slots.
class ResourceMonitor {
 public:
  /// `window` = number of most recent samples averaged per VM.
  explicit ResourceMonitor(std::size_t num_vms, std::size_t window = 30);

  std::size_t num_vms() const { return windows_.size(); }
  std::size_t window() const { return window_; }

  /// Ingests one sample (sample.vm selects the slot).
  void observe(const virt::MonitorSample& sample);

  /// Ingests a whole run's samples.
  void observe_all(std::span<const virt::MonitorSample> samples);

  /// Number of samples currently held for a VM.
  std::size_t sample_count(std::size_t vm) const;

  /// Windowed-average profile of a VM slot; idle profile when empty.
  AppProfile profile(std::size_t vm) const;

  /// Clears one VM's window (e.g., when a new task is placed there).
  void reset(std::size_t vm);

 private:
  std::size_t window_;
  std::vector<std::deque<virt::MonitorSample>> windows_;
};

}  // namespace tracon::monitor
