#include "monitor/drift.hpp"

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace tracon::monitor {

DriftDetector::DriftDetector(DriftConfig cfg) : cfg_(cfg) {
  TRACON_REQUIRE(cfg_.reference_window >= 2 && cfg_.recent_window >= 2,
                 "drift windows must hold at least two samples");
  TRACON_REQUIRE(cfg_.mean_shift_sigmas > 0.0 &&
                     cfg_.variance_surge_factor > 1.0,
                 "invalid drift thresholds");
}

DriftKind DriftDetector::observe(double relative_error) {
  TRACON_REQUIRE(std::isfinite(relative_error) && relative_error >= 0.0,
                 "relative error must be finite and non-negative");
  if (reference_.size() < cfg_.reference_window) {
    reference_.push_back(relative_error);
  } else {
    recent_.push_back(relative_error);
    while (recent_.size() > cfg_.recent_window) recent_.pop_front();
  }
  state_ = evaluate();
  return state_;
}

DriftKind DriftDetector::evaluate() const {
  if (reference_.size() < cfg_.reference_window ||
      recent_.size() < cfg_.recent_window) {
    return DriftKind::kNone;
  }
  std::vector<double> ref(reference_.begin(), reference_.end());
  std::vector<double> rec(recent_.begin(), recent_.end());
  Summary sref = Summary::of(ref);
  Summary srec = Summary::of(rec);

  double shift = std::abs(srec.mean - sref.mean);
  double threshold = std::max(cfg_.mean_shift_sigmas * sref.stddev,
                              cfg_.min_abs_shift);
  if (shift > threshold) return DriftKind::kMeanShift;

  double vref = sref.stddev * sref.stddev;
  double vrec = srec.stddev * srec.stddev;
  double vfloor = cfg_.min_abs_shift * cfg_.min_abs_shift;
  if (vrec > cfg_.variance_surge_factor * std::max(vref, vfloor))
    return DriftKind::kVarianceSurge;
  return DriftKind::kNone;
}

void DriftDetector::reset() {
  reference_.clear();
  recent_.clear();
  state_ = DriftKind::kNone;
}

}  // namespace tracon::monitor
