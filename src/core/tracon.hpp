// TRACON facade: the full profile -> model -> schedule pipeline in one
// object. This is the library's main entry point; see examples/ for
// usage and README.md for the architecture overview.
//
//   tracon::core::Tracon system;                    // paper testbed
//   system.register_applications(apps);             // profile + measure
//   system.train(model::ModelKind::kNonlinear);     // fit NLM per app
//   auto sched = system.make_scheduler(
//       core::SchedulerKind::kMibs, sched::Objective::kRuntime, 8);
//   auto outcome = sim::run_dynamic(system.perf_table(), *sched, cfg);
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "model/factory.hpp"
#include "model/profiler.hpp"
#include "sched/mios.hpp"
#include "sched/predictor.hpp"
#include "sched/scheduler.hpp"
#include "sim/perf_table.hpp"
#include "virt/host_config.hpp"
#include "workload/synthetic.hpp"

namespace tracon::core {

enum class SchedulerKind { kFifo, kMios, kMibs, kMix };

std::string scheduler_kind_name(SchedulerKind kind);

struct TraconConfig {
  virt::HostConfig host = virt::HostConfig::paper_testbed();
  workload::SyntheticConfig synthetic;
  std::uint64_t seed = 42;
};

class Tracon {
 public:
  explicit Tracon(TraconConfig cfg = {});

  /// Profiles the applications (solo + pairwise ground truth) and
  /// gathers each one's interference training set against the synthetic
  /// workload generator. Must be called before train().
  void register_applications(const std::vector<virt::AppBehavior>& apps);

  /// Trains per-application interference models of the given kind and
  /// builds the prediction table the schedulers consult.
  void train(model::ModelKind kind);

  /// Trains a standalone prediction table of the given kind from the
  /// registered training sets WITHOUT touching the active models — the
  /// building block for multi-family ensembles (each confidence-weighted
  /// family is one such table). Requires register_applications().
  sched::TablePredictor train_predictor(model::ModelKind kind) const;

  bool trained() const { return predictor_.has_value(); }
  std::size_t num_apps() const { return apps_.size(); }
  const std::vector<virt::AppBehavior>& applications() const { return apps_; }

  model::Profiler& profiler() { return profiler_; }
  const sim::PerfTable& perf_table() const;
  const sched::TablePredictor& predictor() const;
  const model::TrainingSet& training_set(std::size_t app) const;
  const model::ModelPair& models(std::size_t app) const;
  model::ModelKind model_kind() const { return kind_; }

  /// Creates a scheduler bound to this system's predictor. `queue_limit`
  /// applies to MIBS/MIX (the paper's subscript, e.g. MIBS_8). The
  /// placement policy controls beneficial-join admission (disable it for
  /// fixed-batch static allocation, where every task must be placed).
  /// `predictor_override` substitutes another predictor view (e.g. a
  /// sched::PredictionCache over this system's predictor) — the caller
  /// keeps ownership and must outlive the scheduler.
  std::unique_ptr<sched::Scheduler> make_scheduler(
      SchedulerKind kind, sched::Objective objective,
      std::size_t queue_limit = 8, double batch_timeout_s = 60.0,
      sched::PlacementPolicy policy = {},
      const sched::Predictor* predictor_override = nullptr) const;

 private:
  TraconConfig cfg_;
  model::Profiler profiler_;
  std::vector<virt::AppBehavior> apps_;
  std::vector<virt::AppBehavior> synthetic_;
  std::vector<model::TrainingSet> training_sets_;
  std::optional<sim::PerfTable> perf_table_;
  std::vector<model::ModelPair> models_;
  std::optional<sched::TablePredictor> predictor_;
  model::ModelKind kind_ = model::ModelKind::kNonlinear;
};

}  // namespace tracon::core
