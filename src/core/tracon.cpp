#include "core/tracon.hpp"

#include "sched/fifo.hpp"
#include "sched/mibs.hpp"
#include "sched/mios.hpp"
#include "sched/mix.hpp"
#include "util/error.hpp"

namespace tracon::core {

std::string scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFifo: return "FIFO";
    case SchedulerKind::kMios: return "MIOS";
    case SchedulerKind::kMibs: return "MIBS";
    case SchedulerKind::kMix: return "MIX";
  }
  return "unknown";
}

Tracon::Tracon(TraconConfig cfg)
    : cfg_(cfg),
      profiler_(virt::HostSimulator(cfg.host), cfg.seed),
      synthetic_(workload::synthetic_workloads(cfg.synthetic)) {
  TRACON_REQUIRE(cfg.host.num_cores > 0, "host must have at least one core");
}

void Tracon::register_applications(
    const std::vector<virt::AppBehavior>& apps) {
  TRACON_REQUIRE(!apps.empty(), "need at least one application");
  apps_ = apps;
  training_sets_.clear();
  training_sets_.reserve(apps_.size());
  for (const auto& app : apps_)
    training_sets_.push_back(profiler_.profile_against(app, synthetic_));
  perf_table_ = sim::PerfTable::build(profiler_, apps_);
  models_.clear();
  predictor_.reset();
}

void Tracon::train(model::ModelKind kind) {
  TRACON_REQUIRE(!apps_.empty(), "register applications before training");
  kind_ = kind;
  models_.clear();
  models_.reserve(apps_.size());
  std::vector<monitor::AppProfile> profiles;
  profiles.reserve(apps_.size());
  for (std::size_t a = 0; a < apps_.size(); ++a) {
    models_.push_back(model::train_model_pair(kind, training_sets_[a]));
    profiles.push_back(perf_table_->profile(a));
  }
  predictor_ = sched::TablePredictor::from_models(models_, profiles);
}

sched::TablePredictor Tracon::train_predictor(model::ModelKind kind) const {
  TRACON_REQUIRE(!apps_.empty(), "register applications before training");
  std::vector<model::ModelPair> models;
  models.reserve(apps_.size());
  std::vector<monitor::AppProfile> profiles;
  profiles.reserve(apps_.size());
  for (std::size_t a = 0; a < apps_.size(); ++a) {
    models.push_back(model::train_model_pair(kind, training_sets_[a]));
    profiles.push_back(perf_table_->profile(a));
  }
  return sched::TablePredictor::from_models(models, profiles);
}

const sim::PerfTable& Tracon::perf_table() const {
  TRACON_REQUIRE(perf_table_.has_value(),
                 "register applications before using the perf table");
  return *perf_table_;
}

const sched::TablePredictor& Tracon::predictor() const {
  TRACON_REQUIRE(predictor_.has_value(), "train before using the predictor");
  return *predictor_;
}

const model::TrainingSet& Tracon::training_set(std::size_t app) const {
  TRACON_REQUIRE(app < training_sets_.size(), "app index out of range");
  return training_sets_[app];
}

const model::ModelPair& Tracon::models(std::size_t app) const {
  TRACON_REQUIRE(app < models_.size(), "app index out of range (trained?)");
  return models_[app];
}

std::unique_ptr<sched::Scheduler> Tracon::make_scheduler(
    SchedulerKind kind, sched::Objective objective, std::size_t queue_limit,
    double batch_timeout_s, sched::PlacementPolicy policy,
    const sched::Predictor* predictor_override) const {
  if (kind == SchedulerKind::kFifo)
    return std::make_unique<sched::FifoScheduler>(cfg_.seed + 1);
  const sched::Predictor& pred =
      predictor_override != nullptr ? *predictor_override : predictor();
  switch (kind) {
    case SchedulerKind::kMios: {
      // MIOS dispatches every task immediately to its best VM
      // (Algorithm 1) — it has no admission control, which is why the
      // paper finds it the weakest of the three TRACON schedulers.
      sched::PlacementPolicy mios_policy = policy;
      mios_policy.beneficial_joins_only = false;
      return std::make_unique<sched::MiosScheduler>(pred, objective,
                                                    mios_policy);
    }
    case SchedulerKind::kMibs:
      return std::make_unique<sched::MibsScheduler>(
          pred, objective, queue_limit, batch_timeout_s, policy);
    case SchedulerKind::kMix:
      return std::make_unique<sched::MixScheduler>(
          pred, objective, queue_limit, batch_timeout_s, policy);
    case SchedulerKind::kFifo: break;
  }
  throw std::invalid_argument("unknown scheduler kind");
}

}  // namespace tracon::core
