# Central carrier for sanitizer and paranoid-mode build flags.
#
# Every compiled target (libraries, tools, tests, benches, examples)
# links `tracon_build_flags`, so a single definition here propagates
# through each module's CMakeLists.txt. Keeping the flags on an
# INTERFACE target (rather than directory-scoped add_compile_options)
# guarantees that a target added later cannot silently miss them: the
# link edge is explicit in every build file.

add_library(tracon_build_flags INTERFACE)

if(TRACON_PARANOID)
  # Compiles in TRACON_DCHECK / TRACON_CHECK_FINITE (see src/util/error.hpp).
  target_compile_definitions(tracon_build_flags INTERFACE TRACON_PARANOID=1)
endif()

if(TRACON_SANITIZE)
  set(_tracon_san_flags "")
  foreach(_san IN LISTS TRACON_SANITIZE)
    list(APPEND _tracon_san_flags "-fsanitize=${_san}")
  endforeach()
  # -fno-sanitize-recover makes UBSan findings fatal so CI cannot pass
  # with a report in the log; frame pointers keep ASan traces symbolic.
  target_compile_options(tracon_build_flags INTERFACE
    ${_tracon_san_flags} -fno-omit-frame-pointer -fno-sanitize-recover=all)
  target_link_options(tracon_build_flags INTERFACE ${_tracon_san_flags})
endif()

if(TRACON_CLANG_TIDY)
  find_program(TRACON_CLANG_TIDY_EXE
    NAMES clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy-16
          clang-tidy-15 clang-tidy-14)
  if(NOT TRACON_CLANG_TIDY_EXE)
    message(WARNING
      "TRACON_CLANG_TIDY=ON but no clang-tidy binary was found; "
      "continuing without it")
  endif()
endif()
