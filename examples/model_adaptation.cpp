// Online model adaptation: what happens when the environment changes
// under a trained model.
//
// A blastn interference model is trained on the local-disk testbed,
// then the storage moves to remote iSCSI (different bandwidth, latency,
// and Dom0 cost). The adaptive wrapper tracks prediction errors with a
// drift detector and rebuilds from a sliding window — the example
// prints the error trajectory before/after each rebuild.
#include <cstdio>

#include "model/adaptive.hpp"
#include "model/profiler.hpp"
#include "util/rng.hpp"
#include "workload/benchmarks.hpp"
#include "workload/synthetic.hpp"

int main() {
  using namespace tracon;

  virt::AppBehavior blastn = *workload::benchmark_by_name("blastn");
  model::Profiler local(
      virt::HostSimulator(virt::HostConfig::paper_testbed()));
  model::Profiler iscsi(
      virt::HostSimulator(virt::HostConfig::iscsi_testbed()));

  // Initial training data: blastn against the 125 synthetic workloads
  // on the local host.
  auto synth = workload::synthetic_workloads();
  model::TrainingSet initial = local.profile_against(blastn, synth);

  model::AdaptiveConfig cfg;
  cfg.rebuild_interval = 64;  // smaller than the paper's 160 for brevity
  cfg.window_size = 256;
  model::AdaptiveModel adaptive(initial, model::Response::kRuntime, cfg);
  std::printf("initial model: %s\n\n", adaptive.current().describe().c_str());

  // Stream observations from the iSCSI environment: pick random
  // backgrounds and feed (features, actual runtime) pairs.
  Rng rng(99);
  std::printf("%-8s %-10s %-8s\n", "obs#", "rel.err", "rebuilds");
  double bin_err = 0.0;
  constexpr int kBin = 16;
  for (int i = 1; i <= 320; ++i) {
    const virt::AppBehavior& bg = synth[rng.index(synth.size())];
    virt::PairMeasurement pm = iscsi.measure(blastn, bg);
    model::Observation obs;
    obs.features = monitor::concat_profiles(iscsi.solo_profile(blastn),
                                            iscsi.solo_profile(bg));
    obs.runtime = pm.runtime_s;
    obs.iops = pm.iops;
    bin_err += adaptive.observe(obs);
    if (i % kBin == 0) {
      std::printf("%-8d %-10.3f %-8zu\n", i, bin_err / kBin,
                  adaptive.rebuild_count());
      bin_err = 0.0;
    }
  }
  std::printf(
      "\nThe error starts high (the local-disk model mispredicts the\n"
      "iSCSI host) and falls back to the usual ~10%% once rebuilds have\n"
      "replaced the stale training data — the paper's Fig 7.\n");
  return 0;
}
