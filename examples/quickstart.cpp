// Quickstart: the TRACON pipeline in ~40 lines.
//
//   1. Build a system on the simulated virtualized testbed.
//   2. Register applications — this profiles them (solo runs + pairwise
//      interference measurements + training data vs the synthetic
//      workload generator).
//   3. Train the nonlinear interference model (NLM).
//   4. Ask the model about a co-location, then let the MIBS scheduler
//      place a small batch.
#include <cstdio>

#include "core/tracon.hpp"
#include "sim/static_scenario.hpp"
#include "workload/benchmarks.hpp"

int main() {
  using namespace tracon;

  // 1-2. Profile the paper's eight data-intensive benchmarks.
  core::Tracon system;
  system.register_applications(workload::paper_benchmarks());

  // 3. Fit the degree-2 interference model per application.
  system.train(model::ModelKind::kNonlinear);

  // 4a. What does the model expect if video shares a machine with
  //     blastn, versus sharing with email?
  const auto& table = system.perf_table();
  const auto& predictor = system.predictor();
  std::size_t video = 7, blastn = 5, email = 0;
  std::printf("video solo runtime:            %6.1f s\n",
              table.solo_runtime(video));
  std::printf("video next to blastn: predicted %6.1f s, measured %6.1f s\n",
              predictor.predict_runtime(video, blastn),
              table.runtime(video, blastn));
  std::printf("video next to email:  predicted %6.1f s, measured %6.1f s\n",
              predictor.predict_runtime(video, email),
              table.runtime(video, email));

  // 4b. Schedule a batch of 8 tasks onto 4 machines (2 VMs each).
  std::vector<std::size_t> tasks = {7, 5, 0, 0, 6, 1, 2, 3};
  auto fifo = system.make_scheduler(core::SchedulerKind::kFifo,
                                    sched::Objective::kRuntime);
  sched::PlacementPolicy place_all;
  place_all.beneficial_joins_only = false;  // fixed batch: place everything
  auto mibs = system.make_scheduler(core::SchedulerKind::kMibs,
                                    sched::Objective::kRuntime, tasks.size(),
                                    0.0, place_all);
  auto base = sim::run_static(table, *fifo, tasks, 4);
  auto smart = sim::run_static(table, *mibs, tasks, 4);
  std::printf("\nbatch of %zu tasks on 4 machines:\n", tasks.size());
  std::printf("  FIFO     total runtime %7.1f s\n", base.total_runtime);
  std::printf("  MIBS_RT  total runtime %7.1f s  (speedup %.2fx)\n",
              smart.total_runtime, base.total_runtime / smart.total_runtime);
  return 0;
}
