// Consolidating a mixed data-intensive workload onto a small cluster.
//
// A batch of tasks drawn from the paper's medium I/O mix is placed onto
// 8 machines by FIFO and by MIBS under both objectives. The example
// prints the realized totals and the per-pair placements MIBS chose, so
// you can see the interference-aware pairing (I/O-heavy tasks matched
// with CPU-lean, I/O-light neighbours).
#include <cstdio>

#include "core/tracon.hpp"
#include "sched/fifo.hpp"
#include "sched/mibs.hpp"
#include "sim/static_scenario.hpp"
#include "util/rng.hpp"
#include "workload/benchmarks.hpp"
#include "workload/mixes.hpp"

int main() {
  using namespace tracon;

  core::Tracon system;
  system.register_applications(workload::paper_benchmarks());
  system.train(model::ModelKind::kNonlinear);
  const auto& table = system.perf_table();

  constexpr std::size_t kMachines = 8;
  Rng rng(2026);
  auto tasks = workload::sample_task_indices(workload::MixKind::kMedium,
                                             2 * kMachines, rng);
  std::printf("tasks: ");
  for (std::size_t t : tasks) std::printf("%s ", table.app_name(t).c_str());
  std::printf("\n\n");

  // FIFO baseline, averaged over placements.
  double fifo_rt = 0, fifo_io = 0;
  constexpr int kRepeats = 25;
  for (int r = 0; r < kRepeats; ++r) {
    sched::FifoScheduler fifo(100 + static_cast<unsigned>(r));
    auto o = sim::run_static(table, fifo, tasks, kMachines);
    fifo_rt += o.total_runtime / kRepeats;
    fifo_io += o.total_iops / kRepeats;
  }
  std::printf("FIFO (avg of %d):   runtime %8.1f s   IOPS %8.1f\n", kRepeats,
              fifo_rt, fifo_io);

  sched::PlacementPolicy place_all;
  place_all.beneficial_joins_only = false;
  for (auto objective : {sched::Objective::kRuntime, sched::Objective::kIops}) {
    sched::MibsScheduler mibs(system.predictor(), objective, tasks.size(),
                              0.0, place_all);
    auto o = sim::run_static(table, mibs, tasks, kMachines);
    std::printf("%-18s runtime %8.1f s   IOPS %8.1f   "
                "(speedup %.2fx, IOBoost %.2fx)\n",
                mibs.name().c_str(), o.total_runtime, o.total_iops,
                fifo_rt / o.total_runtime, o.total_iops / fifo_io);
  }

  // Show the concrete pairing MIBS_RT chose.
  std::printf("\nMIBS_RT pairings (who shares a machine with whom):\n");
  sched::MibsScheduler mibs(system.predictor(), sched::Objective::kRuntime,
                            tasks.size(), 0.0, place_all);
  sched::ClusterCounts counts(table.num_apps(), kMachines);
  std::vector<sched::QueuedTask> queue;
  for (std::size_t t : tasks) queue.push_back({t, 0.0});
  std::vector<std::size_t> order(queue.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto outcome = sched::mibs_batch(queue, order, counts, system.predictor(),
                                   sched::Objective::kRuntime, place_all);
  for (const auto& p : outcome.placements) {
    std::printf("  %-9s -> %s\n", table.app_name(tasks[p.queue_pos]).c_str(),
                p.neighbour.has_value()
                    ? table.app_name(*p.neighbour).c_str()
                    : "(empty machine)");
  }
  return 0;
}
