// Live rebalancing under a workload mix shift (DESIGN.md §6h).
//
// An interference-blind FIFO scheduler places tasks at random, so
// co-location quality is whatever the dice said — and halfway through
// the run the arrival mix shifts from light to heavy I/O, making the
// early placements stale even where they were lucky. The A/B:
//
//   rebalance   --rebalance on: a migrate::Rebalancer watches realized
//               per-(app, co-runner) slowdowns and moves running tasks
//               when the predicted gain beats the migration cost
//   static      placements are final (the paper's baseline behaviour)
//
// Both runs record a decision log; the post-shift mean realized
// slowdown comes from its outcome records (runtime / solo), so the
// numbers printed here are exactly what `tracon attribution` would
// compute. The comparison is rendered with the same report machinery
// as `tracon report A B`.
//
// Flags:
//   --store DIR    run store directory (default runs-rebalance-ab)
//   --hours H      horizon (default 2; the shift happens at H/2)
//   --json         emit the report as JSON instead of text
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>

#include "migrate/rebalancer.hpp"
#include "model/profiler.hpp"
#include "obs/decision_log.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "runstore/report.hpp"
#include "runstore/runstore.hpp"
#include "sched/fifo.hpp"
#include "sim/arrival_source.hpp"
#include "sim/dynamic_scenario.hpp"
#include "util/cli.hpp"
#include "workload/benchmarks.hpp"
#include "workload/mixes.hpp"

namespace {

using namespace tracon;

struct AbRun {
  std::string id;
  std::size_t completed = 0;
  std::size_t migrations = 0;
  double post_shift_slowdown = 0.0;  ///< mean realized, t >= shift
};

AbRun run_once(const sim::PerfTable& table,
               const sched::TablePredictor& oracle, bool rebalance,
               double hours, runstore::RunStore& store) {
  obs::Telemetry tel;
  tel.tracer.set_enabled(false);
  tel.decisions.set_enabled(true);

  sim::DynamicConfig cfg;
  cfg.machines = 16;
  cfg.lambda_per_min = 9.0;
  cfg.duration_s = hours * 3600.0;
  cfg.seed = 5;
  cfg.telemetry = &tel;
  cfg.accuracy_probe = &oracle;
  cfg.accuracy_family = "oracle";
  const double shift_s = cfg.duration_s / 2.0;
  sim::MixShiftArrivalSource source(cfg.lambda_per_min, cfg.duration_s,
                                    shift_s, workload::MixKind::kLight,
                                    workload::MixKind::kHeavy, 1.5, cfg.seed);
  cfg.arrival_source = &source;

  migrate::RebalanceConfig rcfg;
  rcfg.interval_s = 120.0;
  rcfg.slowdown_threshold = 1.05;
  rcfg.min_cell_samples = 2;
  rcfg.min_benefit_s = 0.5;
  rcfg.max_moves_per_round = 4;
  std::optional<migrate::Rebalancer> reb;
  if (rebalance) {
    reb.emplace(oracle, rcfg);
    cfg.rebalancer = &*reb;
  }

  sched::FifoScheduler fifo(cfg.seed + 1);
  fifo.set_telemetry(&tel);
  tel.metrics.set_fingerprint("scheduler", fifo.name());
  tel.metrics.set_fingerprint("seed", std::to_string(cfg.seed));
  tel.metrics.set_fingerprint("rebalance", rebalance ? "on" : "off");
  sim::DynamicOutcome o = sim::run_dynamic(table, fifo, cfg);

  AbRun result;
  result.completed = o.completed;
  // Post-shift quality, straight from the run's own provenance: every
  // outcome record carries the realized runtime and the solo baseline.
  obs::DecisionDoc doc = obs::parse_decision_log(tel.decisions.str());
  double sum = 0.0;
  std::size_t n = 0;
  for (const obs::DecisionEvent& e : doc.events) {
    if (e.kind == obs::DecisionEvent::Kind::kMigration) ++result.migrations;
    if (e.kind != obs::DecisionEvent::Kind::kOutcome) continue;
    if (e.time_s < shift_s || e.solo_runtime_s <= 0.0) continue;
    sum += e.runtime_s / e.solo_runtime_s;
    ++n;
  }
  result.post_shift_slowdown = n == 0 ? 0.0 : sum / static_cast<double>(n);
  result.id = store.add_run(tel.metrics, fifo.name(),
                            rebalance ? "rebalance-on" : "rebalance-off", "",
                            tel.decisions.str());
  std::printf("%-10s completed=%zu  migrations=%zu  post-shift mean "
              "slowdown=%.3fx\n",
              rebalance ? "rebalance" : "static", result.completed,
              result.migrations, result.post_shift_slowdown);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tracon;

  ArgParser args(argc, argv);
  const double hours = args.get_double("hours", 2.0);
  runstore::RunStore store(args.get("store", "runs-rebalance-ab"));

  model::Profiler prof(virt::HostSimulator(virt::HostConfig::paper_testbed()),
                       42);
  sim::PerfTable table =
      sim::PerfTable::build(prof, workload::paper_benchmarks());
  sched::TablePredictor oracle = table.oracle_predictor();

  std::printf("mix shift light->heavy at %.1f h, horizon %.1f h\n\n",
              hours / 2.0, hours);
  AbRun on = run_once(table, oracle, true, hours, store);
  AbRun off = run_once(table, oracle, false, hours, store);
  std::printf("\nrebalance/static post-shift slowdown: %.3f\n\n",
              off.post_shift_slowdown > 0.0
                  ? on.post_shift_slowdown / off.post_shift_slowdown
                  : 0.0);

  // The same diff the CLI renders for `tracon report <on> <off>`.
  runstore::RunRecord ra = *store.find(on.id);
  runstore::RunRecord rb = *store.find(off.id);
  runstore::RunReport report = runstore::diff_runs(
      runstore::summarize_metrics(obs::parse_json(store.read_metrics(ra))),
      runstore::summarize_metrics(obs::parse_json(store.read_metrics(rb))),
      ra.id + " (rebalance)", rb.id + " (static)");
  if (args.has("json")) {
    runstore::write_report_json(std::cout, report);
  } else {
    runstore::write_report_text(std::cout, report);
  }
  return 0;
}
