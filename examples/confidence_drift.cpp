// Confidence-weighted MIX under a workload mix shift.
//
// Two model families feed the MIX scheduler's blended predictor: an
// oracle table (the measured truth) and a "stale" model whose
// co-location ordering no longer matches reality — the situation the
// paper's adaptation loop exists for. Halfway through the run the
// arrival mix shifts from light to heavy I/O. The A/B:
//
//   adaptive   --confidence-weighting on: live windowed error
//              disqualifies the stale family from the blend
//   frozen     equal weights forever (static MIX baseline)
//
// Both runs record metrics and a snapshot series into a run store and
// the comparison is rendered with the same report machinery as
// `tracon report A B` — the series section shows per-window divergence
// between the two runs.
//
// Flags:
//   --store DIR    run store directory (default runs-confidence-drift)
//   --hours H      horizon (default 2; the shift happens at H/2)
//   --json         emit the report as JSON instead of text
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>

#include "model/profiler.hpp"
#include "obs/json.hpp"
#include "obs/snapshot.hpp"
#include "obs/telemetry.hpp"
#include "runstore/report.hpp"
#include "runstore/runstore.hpp"
#include "sched/mix.hpp"
#include "sched/predictor.hpp"
#include "sim/arrival_source.hpp"
#include "sim/dynamic_scenario.hpp"
#include "util/cli.hpp"
#include "workload/benchmarks.hpp"
#include "workload/mixes.hpp"

namespace {

using namespace tracon;

/// A stale interference model: its relative ordering of neighbours is
/// inverted against the truth, so the placements it favours are the
/// ones the cluster regrets. Stands in for a model trained on a
/// workload mix that no longer arrives.
class StalePredictor final : public sched::Predictor {
 public:
  explicit StalePredictor(const sched::TablePredictor& oracle)
      : oracle_(oracle) {}
  std::size_t num_apps() const override { return oracle_.num_apps(); }
  double predict_runtime(
      std::size_t task,
      const std::optional<std::size_t>& neighbour) const override {
    const double solo = oracle_.predict_runtime(task, std::nullopt);
    return 4.0 * solo * solo / oracle_.predict_runtime(task, neighbour);
  }
  double predict_iops(
      std::size_t task,
      const std::optional<std::size_t>& neighbour) const override {
    const double solo = oracle_.predict_iops(task, std::nullopt);
    return solo * solo / std::max(oracle_.predict_iops(task, neighbour), 1e-9);
  }

 private:
  const sched::TablePredictor& oracle_;
};

struct DriftRun {
  std::string id;
  double mean_completion_s = 0.0;
  std::size_t completed = 0;
};

DriftRun run_once(const sim::PerfTable& table,
                  const sched::TablePredictor& oracle,
                  const StalePredictor& stale, bool adapt, double hours,
                  runstore::RunStore& store) {
  sched::ConfidenceConfig ccfg;
  ccfg.window = 32;
  ccfg.min_samples = 8;
  ccfg.adapt = adapt;
  sched::ConfidenceWeightedPredictor pred(
      {{"oracle", &oracle}, {"stale", &stale}}, ccfg);

  obs::Telemetry tel;
  tel.tracer.set_enabled(false);
  pred.set_metrics(&tel.metrics);
  obs::SnapshotSeries series(tel.metrics, 600.0);
  series.track_accuracy("model.oracle.runtime", &pred.runtime_window(0));
  series.track_accuracy("model.stale.runtime", &pred.runtime_window(1));

  sim::DynamicConfig cfg;
  cfg.machines = 8;
  cfg.lambda_per_min = 8.0;
  cfg.duration_s = hours * 3600.0;
  cfg.seed = 5;
  cfg.telemetry = &tel;
  cfg.snapshots = &series;
  cfg.outcome_observer = &pred;
  sim::MixShiftArrivalSource source(
      cfg.lambda_per_min, cfg.duration_s, cfg.duration_s / 2.0,
      workload::MixKind::kLight, workload::MixKind::kHeavy, 1.5, cfg.seed);
  cfg.arrival_source = &source;

  sched::MixScheduler mix(pred, sched::Objective::kRuntime, 8, 60.0, {});
  tel.metrics.set_fingerprint("scheduler", mix.name());
  tel.metrics.set_fingerprint("confidence", adapt ? "on" : "off");
  tel.metrics.set_fingerprint("seed", std::to_string(cfg.seed));
  sim::DynamicOutcome o = sim::run_dynamic(table, mix, cfg);

  DriftRun result;
  result.id = store.add_run(tel.metrics, mix.name(),
                            adapt ? "drift-adaptive" : "drift-frozen",
                            series.str());
  result.completed = o.completed;
  result.mean_completion_s =
      o.completed == 0 ? 0.0
                       : o.total_runtime / static_cast<double>(o.completed);
  std::printf("%-8s weights oracle=%.2f stale=%.2f  completed=%zu  "
              "mean completion=%.1f s\n",
              adapt ? "adaptive" : "frozen", pred.runtime_weight(0),
              pred.runtime_weight(1), result.completed,
              result.mean_completion_s);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tracon;

  ArgParser args(argc, argv);
  const double hours = args.get_double("hours", 2.0);
  runstore::RunStore store(args.get("store", "runs-confidence-drift"));

  model::Profiler prof(virt::HostSimulator(virt::HostConfig::paper_testbed()),
                       42);
  sim::PerfTable table =
      sim::PerfTable::build(prof, workload::paper_benchmarks());
  sched::TablePredictor oracle = table.oracle_predictor();
  StalePredictor stale(oracle);

  std::printf("mix shift light->heavy at %.1f h, horizon %.1f h\n\n",
              hours / 2.0, hours);
  DriftRun adaptive = run_once(table, oracle, stale, true, hours, store);
  DriftRun frozen = run_once(table, oracle, stale, false, hours, store);
  std::printf("\nadaptive/frozen mean completion: %.3f\n\n",
              adaptive.mean_completion_s / frozen.mean_completion_s);

  // The same diff the CLI renders for `tracon report <adaptive> <frozen>`.
  runstore::RunRecord ra = *store.find(adaptive.id);
  runstore::RunRecord rb = *store.find(frozen.id);
  runstore::RunReport report = runstore::diff_runs(
      runstore::summarize_metrics(obs::parse_json(store.read_metrics(ra))),
      runstore::summarize_metrics(obs::parse_json(store.read_metrics(rb))),
      ra.id + " (adaptive)", rb.id + " (frozen)");
  runstore::diff_series(obs::parse_metrics_series(store.read_series(ra)),
                        obs::parse_metrics_series(store.read_series(rb)),
                        &report);
  if (args.has("json")) {
    runstore::write_report_json(std::cout, report);
  } else {
    runstore::write_report_text(std::cout, report);
  }
  return 0;
}
