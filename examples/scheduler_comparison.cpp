// Comparing FIFO, MIOS, MIBS, and MIX on a dynamic cluster.
//
// Tasks from the heavy I/O mix arrive as a Poisson process on a
// 32-machine cluster; each scheduler runs the identical workload (same
// seed). The interference-aware schedulers keep capacity by refusing
// capacity-negative co-locations; the table shows completed tasks,
// rejected arrivals, and the mean realized runtime per task.
//
// Telemetry flags (attach to the MIBS run; timestamps are virtual-clock
// so same-seed runs emit byte-identical files):
//   --metrics-out FILE   metrics registry as JSON
//   --trace-out FILE     Chrome trace_event JSON (Perfetto-loadable)
//   --hours H            shorten/lengthen the horizon (default 4)
#include <cstdio>
#include <fstream>

#include "core/tracon.hpp"
#include "obs/telemetry.hpp"
#include "sim/dynamic_scenario.hpp"
#include "util/cli.hpp"
#include "workload/benchmarks.hpp"

int main(int argc, char** argv) {
  using namespace tracon;

  ArgParser args(argc, argv);
  core::Tracon system;
  system.register_applications(workload::paper_benchmarks());
  system.train(model::ModelKind::kNonlinear);

  sim::DynamicConfig cfg;
  cfg.machines = 32;
  cfg.lambda_per_min = 60.0;
  cfg.duration_s = args.get_double("hours", 4.0) * 3600.0;
  cfg.mix = workload::MixKind::kHeavy;

  obs::Telemetry tel;
  tel.tracer.set_enabled(args.has("trace-out"));
  const bool want_telemetry = args.has("metrics-out") || args.has("trace-out");

  std::printf("heavy I/O mix, %zu machines, lambda=%.0f/min, %.0f h\n\n",
              cfg.machines, cfg.lambda_per_min, cfg.duration_s / 3600.0);
  std::printf("%-10s %10s %9s %10s %12s\n", "scheduler", "completed",
              "dropped", "mean RT", "normalized");

  double fifo_completed = 0.0;
  for (auto kind : {core::SchedulerKind::kFifo, core::SchedulerKind::kMios,
                    core::SchedulerKind::kMibs, core::SchedulerKind::kMix}) {
    auto sched = system.make_scheduler(kind, sched::Objective::kRuntime, 8);
    // Telemetry instruments the MIBS run — the scheduler whose decision
    // stream and prediction accuracy the paper's figures examine.
    sim::DynamicConfig run_cfg = cfg;
    if (want_telemetry && kind == core::SchedulerKind::kMibs) {
      run_cfg.telemetry = &tel;
      run_cfg.accuracy_probe = &system.predictor();
      run_cfg.accuracy_family = model::model_kind_name(system.model_kind());
      sched->set_telemetry(&tel);
      tel.metrics.set_fingerprint("seed", std::to_string(run_cfg.seed));
      tel.metrics.set_fingerprint("scheduler", sched->name());
      tel.metrics.set_fingerprint("machines",
                                  std::to_string(run_cfg.machines));
      tel.metrics.set_fingerprint("mix", workload::mix_name(run_cfg.mix));
      tel.metrics.set_fingerprint("host", "paper");
      tel.metrics.set_fingerprint("model", "nlm");
      tel.metrics.set_fingerprint("source", "live");
    }
    sim::DynamicOutcome o =
        sim::run_dynamic(system.perf_table(), *sched, run_cfg);
    if (kind == core::SchedulerKind::kFifo)
      fifo_completed = static_cast<double>(o.completed);
    std::printf("%-10s %10zu %9zu %9.1fs %11.3fx\n", sched->name().c_str(),
                o.completed, o.dropped,
                o.total_runtime / static_cast<double>(o.completed),
                static_cast<double>(o.completed) / fifo_completed);
  }

  if (args.has("metrics-out")) {
    std::ofstream f(args.get("metrics-out"));
    if (!f) {
      std::fprintf(stderr, "cannot open '%s'\n",
                   args.get("metrics-out").c_str());
      return 1;
    }
    tel.metrics.write_json(f);
    std::printf("\nmetrics written to %s\n", args.get("metrics-out").c_str());
  }
  if (args.has("trace-out")) {
    std::ofstream f(args.get("trace-out"));
    if (!f) {
      std::fprintf(stderr, "cannot open '%s'\n",
                   args.get("trace-out").c_str());
      return 1;
    }
    tel.tracer.write_chrome_json(f);
    std::printf("trace written to %s (load in ui.perfetto.dev)\n",
                args.get("trace-out").c_str());
  }
  std::printf(
      "\nFIFO packs any two tasks together and pays for it in interference;\n"
      "the TRACON schedulers trade a few rejected arrivals for far better\n"
      "pairings (Fig 9/11 of the paper).\n");
  return 0;
}
