// Comparing FIFO, MIOS, MIBS, and MIX on a dynamic cluster.
//
// Tasks from the heavy I/O mix arrive as a Poisson process on a
// 32-machine cluster; each scheduler runs the identical workload (same
// seed). The interference-aware schedulers keep capacity by refusing
// capacity-negative co-locations; the table shows completed tasks,
// rejected arrivals, and the mean realized runtime per task.
#include <cstdio>

#include "core/tracon.hpp"
#include "sim/dynamic_scenario.hpp"
#include "workload/benchmarks.hpp"

int main() {
  using namespace tracon;

  core::Tracon system;
  system.register_applications(workload::paper_benchmarks());
  system.train(model::ModelKind::kNonlinear);

  sim::DynamicConfig cfg;
  cfg.machines = 32;
  cfg.lambda_per_min = 60.0;
  cfg.duration_s = 4 * 3600.0;
  cfg.mix = workload::MixKind::kHeavy;

  std::printf("heavy I/O mix, %zu machines, lambda=%.0f/min, %.0f h\n\n",
              cfg.machines, cfg.lambda_per_min, cfg.duration_s / 3600.0);
  std::printf("%-10s %10s %9s %10s %12s\n", "scheduler", "completed",
              "dropped", "mean RT", "normalized");

  double fifo_completed = 0.0;
  for (auto kind : {core::SchedulerKind::kFifo, core::SchedulerKind::kMios,
                    core::SchedulerKind::kMibs, core::SchedulerKind::kMix}) {
    auto sched = system.make_scheduler(kind, sched::Objective::kRuntime, 8);
    sim::DynamicOutcome o = sim::run_dynamic(system.perf_table(), *sched, cfg);
    if (kind == core::SchedulerKind::kFifo)
      fifo_completed = static_cast<double>(o.completed);
    std::printf("%-10s %10zu %9zu %9.1fs %11.3fx\n", sched->name().c_str(),
                o.completed, o.dropped,
                o.total_runtime / static_cast<double>(o.completed),
                static_cast<double>(o.completed) / fifo_completed);
  }
  std::printf(
      "\nFIFO packs any two tasks together and pays for it in interference;\n"
      "the TRACON schedulers trade a few rejected arrivals for far better\n"
      "pairings (Fig 9/11 of the paper).\n");
  return 0;
}
