// Storage-device ablation (the paper's future work: "explore I/O
// interference effects on various storage devices, e.g., RAID and
// solid-state drives (SSD), as well as network storage systems").
//
// For each device model we report (a) the worst and mean pairwise
// slowdown across the eight benchmarks — how much interference exists —
// and (b) the dynamic normalized throughput of MIBS_8 vs FIFO — how
// much an interference-aware scheduler is still worth. Expectation: on
// SSD the sequentiality-collapse channel disappears, interference
// flattens, and scheduling gains shrink accordingly; RAID sits between
// disk and SSD; iSCSI behaves like a slower disk.
#include "bench_common.hpp"

using namespace tracon;

namespace {

struct Device {
  const char* name;
  virt::HostConfig config;
};

}  // namespace

int main() {
  bench::print_header("Storage ablation",
                      "interference and scheduling value by device");

  const std::vector<Device> devices = {
      {"hard-disk", virt::HostConfig::paper_testbed()},
      {"raid0-4", virt::HostConfig::raid_testbed()},
      {"ssd", virt::HostConfig::ssd_testbed()},
      {"iscsi", virt::HostConfig::iscsi_testbed()},
  };

  TableWriter out({"device", "max slowdown", "mean slowdown",
                   "MIBS_8 (margin 0.15)", "MIBS_8 (margin -0.25)"});
  for (const Device& dev : devices) {
    core::TraconConfig cfg;
    cfg.host = dev.config;
    core::Tracon sys(cfg);
    sys.register_applications(workload::paper_benchmarks());
    sys.train(model::ModelKind::kNonlinear);
    const sim::PerfTable& t = sys.perf_table();

    double worst = 0.0, mean = 0.0;
    for (std::size_t a = 0; a < t.num_apps(); ++a) {
      for (std::size_t b = 0; b < t.num_apps(); ++b) {
        double s = t.runtime(a, b) / t.solo_runtime(a);
        worst = std::max(worst, s);
        mean += s / static_cast<double>(t.num_apps() * t.num_apps());
      }
    }

    sim::DynamicConfig dyn;
    dyn.machines = 32;
    dyn.lambda_per_min = 80.0;
    dyn.duration_s = 18'000.0;
    dyn.mix = workload::MixKind::kHeavy;
    auto fifo = sys.make_scheduler(core::SchedulerKind::kFifo,
                                   sched::Objective::kRuntime);
    auto base = sim::run_dynamic(t, *fifo, dyn);
    sched::PlacementPolicy strict;  // disk-calibrated default
    sched::PlacementPolicy relaxed;
    relaxed.join_margin = -0.25;
    auto strict_s = sys.make_scheduler(core::SchedulerKind::kMibs,
                                       sched::Objective::kRuntime, 8, 60.0,
                                       strict);
    auto relaxed_s = sys.make_scheduler(core::SchedulerKind::kMibs,
                                        sched::Objective::kRuntime, 8, 60.0,
                                        relaxed);
    auto a = sim::run_dynamic(t, *strict_s, dyn);
    auto b = sim::run_dynamic(t, *relaxed_s, dyn);
    out.add_row_numeric(dev.name,
                        {worst, mean,
                         static_cast<double>(a.completed) /
                             static_cast<double>(base.completed),
                         static_cast<double>(b.completed) /
                             static_cast<double>(base.completed)},
                        3);
  }
  out.print(std::cout);
  std::printf(
      "\nexpected: interference (and therefore the value of interference-\n"
      "aware scheduling) is largest on the single spindle, smaller on\n"
      "RAID, and nearly gone on SSD. The beneficial-join margin must be\n"
      "calibrated per device: the strict disk setting over-reserves on\n"
      "RAID/SSD, the relaxed one gives up part of the disk gain.\n");
  return 0;
}
