#!/bin/sh
# Runs every bench harness binary and records wall-clock time plus exit
# status as JSON: one <out-dir>/BENCH_<name>.json per binary and a
# consolidated <out-dir>/BENCH_all.json. Stdout/stderr of each bench is
# captured next to its JSON as <name>.log.
#
# Usage: bench/run_all.sh [build-dir] [out-dir]
#   build-dir  CMake build tree containing bench/ (default: build)
#   out-dir    where results are written (default: bench-results)
#
# Environment:
#   TRACON_BENCH_SKIP     space-separated bench names to skip
#                         (e.g. "bench_micro bench_fig11")
#   TRACON_TELEMETRY_DIR  if set, bench_fig9/bench_fig11 additionally
#                         write metrics + trace JSON into it (see
#                         bench/bench_common.hpp).
set -eu

build_dir="${1:-build}"
out_dir="${2:-bench-results}"
skip="${TRACON_BENCH_SKIP:-}"

if [ ! -d "$build_dir/bench" ]; then
  echo "error: $build_dir/bench not found (build the project first)" >&2
  exit 2
fi
mkdir -p "$out_dir"

# Benches that emit their own machine-readable summaries (bench_scaling's
# BENCH_scaling.json) write them next to the wrapper JSONs.
TRACON_BENCH_OUT="$out_dir"
export TRACON_BENCH_OUT

names=""
overall=0
for bin in "$build_dir"/bench/bench_*; do
  [ -f "$bin" ] && [ -x "$bin" ] || continue
  name="${bin##*/}"
  skipped=0
  for s in $skip; do
    [ "$s" = "$name" ] && skipped=1
  done
  if [ "$skipped" -eq 1 ]; then
    echo "$name: skipped (TRACON_BENCH_SKIP)"
    continue
  fi
  start=$(date +%s)
  status=0
  rm -f "$out_dir/THROUGHPUT_${name}.json"
  "$bin" >"$out_dir/${name}.log" 2>&1 || status=$?
  end=$(date +%s)
  wall=$((end - start))
  # Benches that count their simulated tasks (bench/bench_common.hpp's
  # ThroughputReporter) leave a THROUGHPUT_<name>.json sidecar; fold it
  # into the wrapper as the "throughput" block.
  if [ -f "$out_dir/THROUGHPUT_${name}.json" ]; then
    tp=$(tr -d '\n' <"$out_dir/THROUGHPUT_${name}.json")
    rm -f "$out_dir/THROUGHPUT_${name}.json"
    printf '{"bench": "%s", "exit_status": %d, "wall_seconds": %d, "throughput": %s}\n' \
      "$name" "$status" "$wall" "$tp" >"$out_dir/BENCH_${name}.json"
  else
    printf '{"bench": "%s", "exit_status": %d, "wall_seconds": %d}\n' \
      "$name" "$status" "$wall" >"$out_dir/BENCH_${name}.json"
  fi
  echo "$name: exit=$status wall=${wall}s"
  names="$names $name"
  [ "$status" -eq 0 ] || overall=1
done

# Rebalancing A/B (examples/rebalance_ab): same wrapper JSON shape plus
# the headline ratio — post-shift mean realized slowdown of the
# rebalancing run over the static run (< 1.0 means rebalancing wins).
ab="$build_dir/examples/example_rebalance_ab"
if [ -f "$ab" ] && [ -x "$ab" ]; then
  name="rebalance"
  skipped=0
  for s in $skip; do
    [ "$s" = "$name" ] && skipped=1
  done
  if [ "$skipped" -eq 1 ]; then
    echo "$name: skipped (TRACON_BENCH_SKIP)"
  else
    start=$(date +%s)
    status=0
    "$ab" --store "$out_dir/runs-rebalance-ab" \
      >"$out_dir/${name}.log" 2>&1 || status=$?
    end=$(date +%s)
    wall=$((end - start))
    ratio=$(sed -n 's/^rebalance\/static post-shift slowdown: //p' \
      "$out_dir/${name}.log" | head -n 1)
    [ -n "$ratio" ] || ratio="null"
    printf '{"bench": "%s", "exit_status": %d, "wall_seconds": %d, "post_shift_slowdown_ratio": %s}\n' \
      "$name" "$status" "$wall" "$ratio" >"$out_dir/BENCH_${name}.json"
    echo "$name: exit=$status wall=${wall}s ratio=$ratio"
    names="$names $name"
    [ "$status" -eq 0 ] || overall=1
  fi
fi

{
  printf '{"benches": [\n'
  first=1
  for name in $names; do
    [ "$first" -eq 1 ] || printf ',\n'
    first=0
    printf '  %s' "$(tr -d '\n' <"$out_dir/BENCH_${name}.json")"
  done
  printf '\n]}\n'
} >"$out_dir/BENCH_all.json"

echo "wrote $out_dir/BENCH_all.json"
exit "$overall"
