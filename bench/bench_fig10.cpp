// Fig 10: normalized throughput of MIBS for queue lengths 2, 4, and 8
// across arrival rates (64 machines, medium focus; all three mixes are
// reported). The paper's shape: longer queues help — at high lambda
// MIBS_8 is ~10% above MIBS_4 and MIBS_2.
#include "bench_common.hpp"

using namespace tracon;

int main() {
  bench::print_header("Fig 10", "MIBS queue-length effect vs lambda");
  core::Tracon sys = bench::make_system();
  sys.train(model::ModelKind::kNonlinear);

  const std::vector<double> lambdas = {20, 40, 60, 80, 120, 160};
  const std::vector<std::size_t> queues = {2, 4, 8};

  for (workload::MixKind mix : {workload::MixKind::kLight,
                                workload::MixKind::kMedium,
                                workload::MixKind::kHeavy}) {
    std::printf("\n-- %s I/O workload (64 machines) --\n",
                workload::mix_name(mix).c_str());
    TableWriter out(
        {"lambda/min", "FIFO tasks", "MIBS_2", "MIBS_4", "MIBS_8"});
    for (double lam : lambdas) {
      sim::DynamicConfig cfg;
      cfg.machines = 64;
      cfg.lambda_per_min = lam;
      cfg.mix = mix;
      auto fifo = sys.make_scheduler(core::SchedulerKind::kFifo,
                                     sched::Objective::kRuntime);
      auto df = sim::run_dynamic(sys.perf_table(), *fifo, cfg);
      std::vector<std::string> cells = {fmt(lam, 0),
                                        std::to_string(df.completed)};
      for (std::size_t q : queues) {
        auto mibs = sys.make_scheduler(core::SchedulerKind::kMibs,
                                       sched::Objective::kRuntime, q);
        auto d = sim::run_dynamic(sys.perf_table(), *mibs, cfg);
        cells.push_back(
            fmt(static_cast<double>(d.completed) / df.completed, 3));
      }
      out.add_row(cells);
    }
    out.print(std::cout);
  }
  std::printf("\npaper shape: throughput improves with queue length.\n");
  return 0;
}
