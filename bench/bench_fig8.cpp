// Fig 8: static workload speedups of MIBS_RT and MIBS_IO over FIFO for
// 8..1024 machines and light / medium / heavy I/O mixes. The paper's
// shape: medium gains the most (>40% there), light is easy for everyone
// (~30%), heavy leaves little room; MIBS_RT wins under saturation
// (heavy), MIBS_IO wins at medium.
#include "bench_common.hpp"
#include "sched/mibs.hpp"
#include "util/rng.hpp"

using namespace tracon;

int main() {
  bench::print_header("Fig 8", "static speedup by machines and I/O mix");
  core::Tracon sys = bench::make_system();
  sys.train(model::ModelKind::kNonlinear);

  const std::vector<std::size_t> machine_counts = {8, 16, 64, 256, 1024};
  const std::vector<workload::MixKind> mixes = {workload::MixKind::kLight,
                                                workload::MixKind::kMedium,
                                                workload::MixKind::kHeavy};

  for (workload::MixKind mix : mixes) {
    std::printf("\n-- %s I/O workload --\n", workload::mix_name(mix).c_str());
    TableWriter out({"machines", "MIBS_RT speedup", "MIBS_IO speedup",
                     "MIBS_IO ioboost"});
    Rng rng(31 + static_cast<std::uint64_t>(mix));
    for (std::size_t m : machine_counts) {
      auto tasks = workload::sample_task_indices(mix, 2 * m, rng);
      auto fifo = bench::fifo_static_baseline(sys.perf_table(), tasks, m,
                                              m >= 256 ? 5 : 20);
      sched::MibsScheduler rt(sys.predictor(), sched::Objective::kRuntime,
                              tasks.size(), 0.0, bench::static_policy());
      sched::MibsScheduler io(sys.predictor(), sched::Objective::kIops,
                              tasks.size(), 0.0, bench::static_policy());
      sim::StaticOutcome ort = sim::run_static(sys.perf_table(), rt, tasks, m);
      sim::StaticOutcome oio = sim::run_static(sys.perf_table(), io, tasks, m);
      out.add_row_numeric(std::to_string(m),
                          {fifo.runtime / ort.total_runtime,
                           fifo.runtime / oio.total_runtime,
                           oio.total_iops / fifo.iops},
                          3);
    }
    out.print(std::cout);
  }
  std::printf(
      "\npaper shape: medium mix benefits most (>40%%), heavy least;\n"
      "MIBS_IO leads at medium, MIBS_RT under heavy saturation.\n");
  return 0;
}
