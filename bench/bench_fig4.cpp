// Fig 4: task scheduling with different models. A batch of 32 tasks
// (uniformly sampled) is scheduled onto 16 machines x 2 VMs by MIBS_RT
// and MIBS_IO driven by WMM, LM, and NLM; Speedup (eq. 5) and IOBoost
// (eq. 6) are reported against the FIFO baseline. Averaged over several
// task draws (the paper averages repeated runs); +/- is the stddev.
#include "bench_common.hpp"
#include "sched/mibs.hpp"
#include "util/rng.hpp"

using namespace tracon;

int main() {
  bench::print_header("Fig 4", "MIBS speedup/IOBoost by prediction model");
  core::Tracon sys = bench::make_system();

  constexpr std::size_t kMachines = 16;
  constexpr std::size_t kTasks = 32;
  constexpr int kDraws = 10;

  const std::vector<model::ModelKind> kinds = {model::ModelKind::kWmm,
                                               model::ModelKind::kLinear,
                                               model::ModelKind::kNonlinear};

  struct Acc {
    std::vector<double> speedup, ioboost;
  };
  // [kind][objective]
  std::vector<std::array<Acc, 2>> acc(kinds.size());

  Rng rng(2024);
  for (int d = 0; d < kDraws; ++d) {
    auto tasks = workload::sample_task_indices(workload::MixKind::kUniform,
                                               kTasks, rng);
    auto fifo = bench::fifo_static_baseline(sys.perf_table(), tasks,
                                            kMachines, 20,
                                            1000 + static_cast<unsigned>(d));
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      sys.train(kinds[k]);
      for (int obj = 0; obj < 2; ++obj) {
        sched::Objective objective = obj == 0 ? sched::Objective::kRuntime
                                              : sched::Objective::kIops;
        sched::MibsScheduler mibs(sys.predictor(), objective, kTasks, 0.0,
                                  bench::static_policy());
        sim::StaticOutcome o =
            sim::run_static(sys.perf_table(), mibs, tasks, kMachines);
        acc[k][obj].speedup.push_back(fifo.runtime / o.total_runtime);
        acc[k][obj].ioboost.push_back(o.total_iops / fifo.iops);
      }
    }
  }

  for (int obj = 0; obj < 2; ++obj) {
    std::printf("\n-- MIBS_%s --\n", obj == 0 ? "RT" : "IO");
    TableWriter out({"model", "Speedup", "IOBoost"});
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      Summary s = Summary::of(acc[k][obj].speedup);
      Summary b = Summary::of(acc[k][obj].ioboost);
      out.add_row({model::model_kind_name(kinds[k]),
                   fmt(s.mean, 3) + " +/- " + fmt(s.stddev, 3),
                   fmt(b.mean, 3) + " +/- " + fmt(b.stddev, 3)});
    }
    out.print(std::cout);
  }
  std::printf(
      "\npaper shape: NLM delivers the best Speedup and IOBoost; WMM and LM\n"
      "trail it on both objectives.\n");
  return 0;
}
