// Fig 3(a)/(b): prediction errors of LM, NLM, and WMM on runtime and
// IOPS for the eight benchmarks, plus the NLM-without-Dom0 ablation the
// paper highlights ("without it, NLM would have much larger prediction
// errors, e.g., twice as much for blastn").
//
// Errors are 5-fold cross-validation means over each application's
// 126-point interference profile; the +/- column is the standard
// deviation of per-point errors (the paper's error bars).
#include "bench_common.hpp"
#include "model/evaluate.hpp"

using namespace tracon;

int main() {
  bench::print_header("Fig 3", "model prediction errors (mean +/- stddev)");
  core::Tracon sys = bench::make_system();

  const std::vector<model::ModelKind> kinds = {
      model::ModelKind::kLinear, model::ModelKind::kNonlinear,
      model::ModelKind::kWmm, model::ModelKind::kNonlinearNoDom0};

  for (model::Response resp :
       {model::Response::kRuntime, model::Response::kIops}) {
    std::printf("\n-- Fig 3(%s): %s prediction error --\n",
                resp == model::Response::kRuntime ? "a" : "b",
                model::response_name(resp).c_str());
    TableWriter out({"benchmark", "LM", "NLM", "WMM", "NLM-noDom0"});
    std::vector<double> mean_by_kind(kinds.size(), 0.0);
    for (std::size_t a = 0; a < sys.num_apps(); ++a) {
      std::vector<std::string> cells = {sys.applications()[a].name};
      for (std::size_t k = 0; k < kinds.size(); ++k) {
        model::ErrorStats e =
            model::cross_validate(kinds[k], sys.training_set(a), resp);
        cells.push_back(fmt(e.mean, 3) + " +/- " + fmt(e.stddev, 3));
        mean_by_kind[k] += e.mean;
      }
      out.add_row(cells);
    }
    std::vector<std::string> avg = {"(average)"};
    for (double m : mean_by_kind)
      avg.push_back(fmt(m / static_cast<double>(sys.num_apps()), 3));
    out.add_row(avg);
    out.print(std::cout);
  }
  std::printf(
      "\npaper shape: NLM ~10%% error; LM and WMM ~20%%+; dropping the Dom0\n"
      "feature increases NLM error (2x for blastn in the paper).\n");
  return 0;
}
