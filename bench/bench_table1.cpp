// Table 1: normalized App1 runtime in VM1 while various App2 run in VM2.
//
// Paper values for reference:
//   Calc    | CPU-hi 1.96 | IO-hi 1.26  | CPU&IO-med 1.77 | CPU&IO-hi 2.52
//   SeqRead | CPU-hi 1.03 | IO-hi 10.23 | CPU&IO-med 1.78 | CPU&IO-hi 16.11
#include "bench_common.hpp"
#include "virt/host_sim.hpp"

using namespace tracon;

int main() {
  bench::print_header("Table 1",
                      "normalized App1 runtime under App2 interference");

  virt::HostConfig cfg = virt::HostConfig::paper_testbed();
  cfg.noise_sigma = 0.0;  // the paper averages three runs; report the mean
  virt::HostSimulator sim(cfg);

  const std::vector<virt::AppBehavior> foregrounds = {
      workload::calc_app(), workload::seqread_app()};
  const std::vector<virt::AppBehavior> backgrounds = {
      workload::cpu_high_app(), workload::io_high_app(),
      workload::cpu_io_medium_app(), workload::cpu_io_high_app()};

  TableWriter out({"App1\\App2", "CPU high", "I/O high", "CPU&I/O med",
                   "CPU&I/O high"});
  for (const auto& fg : foregrounds) {
    double solo = sim.solo(fg).runtime_s;
    std::vector<double> row;
    for (const auto& bg : backgrounds)
      row.push_back(sim.measure_pair(fg, bg).runtime_s / solo);
    out.add_row_numeric(fg.name, row, 2);
  }
  out.print(std::cout);
  std::printf(
      "paper:   calc 1.96/1.26/1.77/2.52 ; seqread 1.03/10.23/1.78/16.11\n");
  return 0;
}
