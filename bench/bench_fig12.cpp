// Fig 12: normalized throughput of MIBS_2 / MIBS_4 / MIBS_8 as the
// cluster grows (lambda = 1000/min, medium mix). The paper's shape:
// longer queues keep a higher throughput at every cluster size.
#include "bench_common.hpp"

using namespace tracon;

int main() {
  bench::print_header("Fig 12", "MIBS queue-length effect vs machines");
  core::Tracon sys = bench::make_system();
  sys.train(model::ModelKind::kNonlinear);

  // With TRACON_BENCH_OUT set, total completed tasks + tasks/sec + peak
  // RSS land in the run_all.sh wrapper JSON; inert otherwise.
  bench::ThroughputReporter throughput("bench_fig12");

  TableWriter out({"machines", "FIFO tasks", "MIBS_2", "MIBS_4", "MIBS_8"});
  for (std::size_t m : {8UL, 16UL, 64UL, 256UL, 1024UL}) {
    sim::DynamicConfig cfg;
    cfg.machines = m;
    cfg.lambda_per_min = 1000.0;
    cfg.mix = workload::MixKind::kMedium;
    auto fifo = sys.make_scheduler(core::SchedulerKind::kFifo,
                                   sched::Objective::kRuntime);
    auto df = sim::run_dynamic(sys.perf_table(), *fifo, cfg);
    throughput.add_tasks(df.completed);
    std::vector<std::string> cells = {std::to_string(m),
                                      std::to_string(df.completed)};
    for (std::size_t q : {2UL, 4UL, 8UL}) {
      auto mibs = sys.make_scheduler(core::SchedulerKind::kMibs,
                                     sched::Objective::kRuntime, q);
      auto d = sim::run_dynamic(sys.perf_table(), *mibs, cfg);
      throughput.add_tasks(d.completed);
      cells.push_back(fmt(static_cast<double>(d.completed) / df.completed, 3));
    }
    out.add_row(cells);
  }
  out.print(std::cout);
  std::printf(
      "\npaper shape: MIBS with a longer queue sustains higher throughput\n"
      "at every cluster size.\n");
  return 0;
}
