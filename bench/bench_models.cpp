// Model ablations beyond the paper's Fig 3: how the modeling choices
// DESIGN.md calls out affect the error that actually matters for
// scheduling — predicting the runtime/IOPS of the eight REAL application
// pairs after training only on the synthetic profiling workloads
// (transfer error), plus Fig 3-style cross-validation for the extension
// model (NLM-log).
#include "bench_common.hpp"
#include "model/evaluate.hpp"
#include "model/nonlinear.hpp"

using namespace tracon;

namespace {

/// Mean relative error of per-app models of `kind` on the measured
/// real-pair table.
struct TransferError {
  double runtime = 0.0;
  double iops = 0.0;
};

TransferError transfer_error(core::Tracon& sys, model::ModelKind kind) {
  sys.train(kind);
  const sim::PerfTable& t = sys.perf_table();
  const sched::TablePredictor& p = sys.predictor();
  TransferError e;
  std::size_t n = t.num_apps();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      e.runtime += model::relative_error(p.predict_runtime(a, b),
                                         t.runtime(a, b));
      e.iops += model::relative_error(p.predict_iops(a, b), t.iops(a, b));
    }
  }
  e.runtime /= static_cast<double>(n * n);
  e.iops /= static_cast<double>(n * n);
  return e;
}

}  // namespace

int main() {
  bench::print_header("Model ablation",
                      "synthetic-to-real transfer error by model choice");
  core::Tracon sys = bench::make_system();

  const std::vector<model::ModelKind> kinds = {
      model::ModelKind::kWmm,          model::ModelKind::kLinear,
      model::ModelKind::kNonlinear,    model::ModelKind::kNonlinearNoDom0,
      model::ModelKind::kNonlinearLog,
  };

  TableWriter out({"model", "transfer err (runtime)", "transfer err (IOPS)"});
  for (model::ModelKind kind : kinds) {
    TransferError e = transfer_error(sys, kind);
    out.add_row_numeric(model::model_kind_name(kind), {e.runtime, e.iops}, 3);
  }
  out.print(std::cout);

  // Gauss-Newton refinement ablation: with the stepwise OLS start the
  // refinement must agree with the plain fit (it is a consistency check,
  // not an accuracy lever).
  model::NonlinearConfig no_gn;
  no_gn.gauss_newton_refine = false;
  double diff = 0.0;
  for (std::size_t a = 0; a < sys.num_apps(); ++a) {
    model::NonlinearModel with(sys.training_set(a), model::Response::kRuntime);
    model::NonlinearModel without(sys.training_set(a),
                                  model::Response::kRuntime, no_gn);
    for (const auto& obs : sys.training_set(a).observations()) {
      diff = std::max(diff, std::abs(with.predict(obs.features) -
                                     without.predict(obs.features)));
    }
  }
  std::printf("\nmax |NLM(GN) - NLM(OLS)| over all training points: %.2e\n",
              diff);
  std::printf(
      "expected: NLM best on runtime transfer; NLM-log closes the IOPS gap\n"
      "(multiplicative interference); dropping Dom0 degrades NLM; the\n"
      "Gauss-Newton and OLS fits coincide (linear-in-parameters model).\n");
  return 0;
}
