// Fig 5: NLM's ability to identify the best co-runner. For each
// application, the predicted minimum runtime over all possible
// neighbours is compared with the measured minimum, average, and
// maximum runtimes. The paper's claim: the predicted minimum tracks the
// measured minimum and never exceeds the measured average or maximum.
#include "bench_common.hpp"

using namespace tracon;

int main() {
  bench::print_header("Fig 5",
                      "predicted min runtime vs measured min/avg/max");
  core::Tracon sys = bench::make_system();
  sys.train(model::ModelKind::kNonlinear);
  const sim::PerfTable& t = sys.perf_table();
  const sched::TablePredictor& pred = sys.predictor();

  TableWriter out({"benchmark", "predicted-min", "measured-min",
                   "measured-avg", "measured-max"});
  int violations = 0;
  for (std::size_t a = 0; a < t.num_apps(); ++a) {
    double pmin = 1e300, mmin = 1e300, mmax = 0.0, msum = 0.0;
    for (std::size_t b = 0; b < t.num_apps(); ++b) {
      pmin = std::min(pmin, pred.predict_runtime(a, b));
      double m = t.runtime(a, b);
      mmin = std::min(mmin, m);
      mmax = std::max(mmax, m);
      msum += m;
    }
    double mavg = msum / static_cast<double>(t.num_apps());
    if (pmin > mavg) ++violations;
    out.add_row_numeric(t.app_name(a), {pmin, mmin, mavg, mmax}, 1);
  }
  out.print(std::cout);
  std::printf(
      "\npredicted-min above measured-avg for %d of %zu benchmarks "
      "(paper: never).\n",
      violations, t.num_apps());
  return 0;
}
