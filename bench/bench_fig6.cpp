// Fig 6: NLM's predicted maximum IOPS per application compared with the
// measured minimum, average, and maximum IOPS over all co-runners. The
// paper's claim: the predicted maximum stays within a small distance of
// the measured maximum throughput.
#include "bench_common.hpp"

using namespace tracon;

int main() {
  bench::print_header("Fig 6", "predicted max IOPS vs measured min/avg/max");
  core::Tracon sys = bench::make_system();
  sys.train(model::ModelKind::kNonlinear);
  const sim::PerfTable& t = sys.perf_table();
  const sched::TablePredictor& pred = sys.predictor();

  TableWriter out({"benchmark", "predicted-max", "measured-min",
                   "measured-avg", "measured-max", "rel-gap"});
  double worst_gap = 0.0;
  for (std::size_t a = 0; a < t.num_apps(); ++a) {
    double pmax = 0.0, mmin = 1e300, mmax = 0.0, msum = 0.0;
    for (std::size_t b = 0; b < t.num_apps(); ++b) {
      pmax = std::max(pmax, pred.predict_iops(a, b));
      double m = t.iops(a, b);
      mmin = std::min(mmin, m);
      mmax = std::max(mmax, m);
      msum += m;
    }
    double mavg = msum / static_cast<double>(t.num_apps());
    double gap = std::abs(pmax - mmax) / mmax;
    worst_gap = std::max(worst_gap, gap);
    out.add_row_numeric(t.app_name(a), {pmax, mmin, mavg, mmax, gap}, 2);
  }
  out.print(std::cout);
  std::printf("\nworst relative gap to measured max: %.2f (paper: small).\n",
              worst_gap);
  return 0;
}
