// Fig 7: online model learning. An initial blastn model is trained on
// 500 profiling points collected with local storage; the environment
// then switches to remote iSCSI storage. Prediction error jumps (the
// paper: runtime error 12% -> 160%, IOPS 12% -> 83%) and TRACON's
// adaptive wrapper — which replaces old training data with runtime
// observations and rebuilds every 160 points — pulls it back to ~10%.
// A control model kept on local storage stays flat.
#include "bench_common.hpp"
#include "model/adaptive.hpp"
#include "model/profiler.hpp"
#include "util/rng.hpp"
#include "virt/host_sim.hpp"
#include "workload/synthetic.hpp"

using namespace tracon;

namespace {

/// A random background workload in the generator's envelope.
virt::AppBehavior random_background(Rng& rng, int id) {
  workload::SyntheticConfig cfg;
  virt::AppBehavior a;
  a.name = "rand-" + std::to_string(id);
  a.solo_runtime_s = 60.0;
  a.cpu_util = rng.uniform(0.0, cfg.max_cpu);
  a.read_iops = rng.uniform(0.0, cfg.max_read_iops);
  a.write_iops = rng.uniform(0.0, cfg.max_write_iops);
  const double kbs[3] = {16.0, 64.0, 256.0};
  const double sig[3] = {0.4, 0.7, 0.9};
  a.request_kb = kbs[rng.index(3)];
  a.sequentiality = sig[rng.index(3)];
  return a;
}

model::Observation observe_pair(model::Profiler& prof,
                                const virt::AppBehavior& target,
                                const virt::AppBehavior& bg) {
  virt::PairMeasurement pm = prof.measure(target, bg);
  model::Observation obs;
  obs.features = monitor::concat_profiles(prof.solo_profile(target),
                                          prof.solo_profile(bg));
  obs.runtime = pm.runtime_s;
  obs.iops = pm.iops;
  return obs;
}

}  // namespace

int main() {
  bench::print_header("Fig 7", "online model learning (local -> iSCSI)");

  constexpr int kInitialPoints = 500;
  constexpr int kStreamPoints = 480;
  constexpr int kBin = 40;

  virt::AppBehavior blastn = *workload::benchmark_by_name("blastn");
  model::Profiler local(virt::HostSimulator(virt::HostConfig::paper_testbed()));
  model::Profiler iscsi(virt::HostSimulator(virt::HostConfig::iscsi_testbed()));

  // Initial model: 500 local profiling points.
  Rng rng(77);
  model::TrainingSet initial;
  for (int i = 0; i < kInitialPoints; ++i) {
    virt::AppBehavior bg = random_background(rng, i);
    initial.add(observe_pair(local, blastn, bg));
  }

  model::AdaptiveConfig acfg;  // rebuild per 160 points, window 500
  model::AdaptiveModel adaptive_rt(initial, model::Response::kRuntime, acfg);
  model::AdaptiveModel adaptive_io(initial, model::Response::kIops, acfg);
  model::AdaptiveModel control_rt(initial, model::Response::kRuntime, acfg);

  // Stream runtime observations: adaptive models see the iSCSI host,
  // the control keeps observing local storage.
  for (int i = 0; i < kStreamPoints; ++i) {
    virt::AppBehavior bg = random_background(rng, 100000 + i);
    model::Observation remote = observe_pair(iscsi, blastn, bg);
    adaptive_rt.observe(remote);
    adaptive_io.observe(remote);
    control_rt.observe(observe_pair(local, blastn, bg));
  }

  TableWriter out({"data points", "runtime err (iSCSI)", "IOPS err (iSCSI)",
                   "runtime err (local ctrl)"});
  auto bin_mean = [&](const std::vector<double>& e, int lo) {
    double s = 0.0;
    for (int i = lo; i < lo + kBin; ++i) s += e[static_cast<std::size_t>(i)];
    return s / kBin;
  };
  for (int lo = 0; lo + kBin <= kStreamPoints; lo += kBin) {
    out.add_row_numeric(
        std::to_string(lo) + "-" + std::to_string(lo + kBin),
        {bin_mean(adaptive_rt.error_history(), lo),
         bin_mean(adaptive_io.error_history(), lo),
         bin_mean(control_rt.error_history(), lo)},
        3);
  }
  out.print(std::cout);
  std::printf(
      "\nrebuilds: runtime=%zu iops=%zu control=%zu (rebuild interval 160)\n"
      "paper shape: error spikes on the storage switch, returns to ~10%%\n"
      "within a few rebuilds; the unchanged environment stays flat.\n",
      adaptive_rt.rebuild_count(), adaptive_io.rebuild_count(),
      control_rt.rebuild_count());
  return 0;
}
