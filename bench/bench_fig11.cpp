// Fig 11: scalability. Normalized throughput of MIBS_8, MIOS, and MIX_8
// for 8..1024 machines at lambda = 1000 tasks/min (medium mix), plus the
// paper's 10,000-machine / lambda = 10,000 MIBS_8 data point. The
// paper's shape: MIBS_8 tracks MIX_8 with the gap shrinking as the
// cluster grows; MIOS improves the least; the 10,000-machine point keeps
// ~40% improvement.
#include "bench_common.hpp"

using namespace tracon;

int main() {
  bench::print_header("Fig 11", "scalability at lambda=1000/min");
  core::Tracon sys = bench::make_system();
  sys.train(model::ModelKind::kNonlinear);

  // With TRACON_TELEMETRY_DIR set, the MIBS_8 runs accumulate metrics
  // and a trace into <dir>/fig11_{metrics,trace}.json; inert otherwise.
  bench::TelemetrySidecar sidecar("fig11");
  // With TRACON_BENCH_OUT set, total completed tasks + tasks/sec + peak
  // RSS land in the run_all.sh wrapper JSON; inert otherwise.
  bench::ThroughputReporter throughput("bench_fig11");

  TableWriter out({"machines", "FIFO tasks", "MIOS", "MIBS_8", "MIX_8"});
  for (std::size_t m : {8UL, 16UL, 64UL, 256UL, 1024UL}) {
    sim::DynamicConfig cfg;
    cfg.machines = m;
    cfg.lambda_per_min = 1000.0;
    cfg.mix = workload::MixKind::kMedium;
    auto fifo = sys.make_scheduler(core::SchedulerKind::kFifo,
                                   sched::Objective::kRuntime);
    auto mios = sys.make_scheduler(core::SchedulerKind::kMios,
                                   sched::Objective::kRuntime);
    auto mibs = sys.make_scheduler(core::SchedulerKind::kMibs,
                                   sched::Objective::kRuntime, 8);
    auto mix8 = sys.make_scheduler(core::SchedulerKind::kMix,
                                   sched::Objective::kRuntime, 8);
    auto df = sim::run_dynamic(sys.perf_table(), *fifo, cfg);
    auto dm = sim::run_dynamic(sys.perf_table(), *mios, cfg);
    sim::DynamicConfig mibs_cfg = cfg;
    if (obs::Telemetry* tel = sidecar.telemetry()) {
      mibs_cfg.telemetry = tel;
      mibs_cfg.accuracy_probe = &sys.predictor();
      mibs_cfg.accuracy_family = model::model_kind_name(sys.model_kind());
      mibs->set_telemetry(tel);
    }
    auto db = sim::run_dynamic(sys.perf_table(), *mibs, mibs_cfg);
    auto dx = sim::run_dynamic(sys.perf_table(), *mix8, cfg);
    throughput.add_tasks(df.completed + dm.completed + db.completed +
                         dx.completed);
    double base = static_cast<double>(df.completed);
    out.add_row({std::to_string(m), std::to_string(df.completed),
                 fmt(dm.completed / base, 3), fmt(db.completed / base, 3),
                 fmt(dx.completed / base, 3)});
  }
  out.print(std::cout);

  // The 10,000-machine data point (1-hour horizon to bound bench time).
  sim::DynamicConfig big;
  big.machines = 10'000;
  big.lambda_per_min = 10'000.0;
  big.duration_s = 3'600.0;
  big.mix = workload::MixKind::kMedium;
  auto fifo = sys.make_scheduler(core::SchedulerKind::kFifo,
                                 sched::Objective::kRuntime);
  auto mibs = sys.make_scheduler(core::SchedulerKind::kMibs,
                                 sched::Objective::kRuntime, 8);
  auto df = sim::run_dynamic(sys.perf_table(), *fifo, big);
  auto db = sim::run_dynamic(sys.perf_table(), *mibs, big);
  throughput.add_tasks(df.completed + db.completed);
  std::printf(
      "\n10,000 machines, lambda=10,000/min (1 h): FIFO=%zu MIBS_8=%zu "
      "normalized=%.3f\n(paper: MIBS_8 remains ~40%% above FIFO)\n",
      df.completed, db.completed,
      static_cast<double>(db.completed) / df.completed);
  return 0;
}
