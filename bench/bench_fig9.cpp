// Fig 9: dynamic workload. Normalized throughput (completed tasks vs
// FIFO) of MIBS_8, MIOS, and MIX_8 on 64 machines over ten hours, for
// Poisson arrival rates lambda and light/medium/heavy mixes. The paper's
// shape: all schedulers tie at low lambda (idle machines everywhere);
// the interference-aware schedulers pull ahead as machines fill; MIX_8
// leads slightly with MIBS_8 close behind at lower overhead.
#include "bench_common.hpp"

using namespace tracon;

int main() {
  bench::print_header("Fig 9", "dynamic normalized throughput vs lambda");
  core::Tracon sys = bench::make_system();
  sys.train(model::ModelKind::kNonlinear);

  // With TRACON_TELEMETRY_DIR set, the MIBS_8 runs accumulate metrics
  // and a trace into <dir>/fig9_{metrics,trace}.json; inert otherwise.
  bench::TelemetrySidecar sidecar("fig9");
  // With TRACON_BENCH_OUT set, total completed tasks + tasks/sec + peak
  // RSS land in the run_all.sh wrapper JSON; inert otherwise.
  bench::ThroughputReporter throughput("bench_fig9");

  const std::vector<double> lambdas = {20, 40, 60, 80, 120, 160};
  const std::vector<workload::MixKind> mixes = {workload::MixKind::kLight,
                                                workload::MixKind::kMedium,
                                                workload::MixKind::kHeavy};

  for (workload::MixKind mix : mixes) {
    std::printf("\n-- %s I/O workload (64 machines, 10 h) --\n",
                workload::mix_name(mix).c_str());
    TableWriter out({"lambda/min", "FIFO tasks", "MIOS", "MIBS_8", "MIX_8"});
    for (double lam : lambdas) {
      sim::DynamicConfig cfg;
      cfg.machines = 64;
      cfg.lambda_per_min = lam;
      cfg.mix = mix;
      auto fifo = sys.make_scheduler(core::SchedulerKind::kFifo,
                                     sched::Objective::kRuntime);
      auto mios = sys.make_scheduler(core::SchedulerKind::kMios,
                                     sched::Objective::kRuntime);
      auto mibs = sys.make_scheduler(core::SchedulerKind::kMibs,
                                     sched::Objective::kRuntime, 8);
      auto mix8 = sys.make_scheduler(core::SchedulerKind::kMix,
                                     sched::Objective::kRuntime, 8);
      auto df = sim::run_dynamic(sys.perf_table(), *fifo, cfg);
      auto dm = sim::run_dynamic(sys.perf_table(), *mios, cfg);
      sim::DynamicConfig mibs_cfg = cfg;
      if (obs::Telemetry* tel = sidecar.telemetry()) {
        mibs_cfg.telemetry = tel;
        mibs_cfg.accuracy_probe = &sys.predictor();
        mibs_cfg.accuracy_family = model::model_kind_name(sys.model_kind());
        mibs->set_telemetry(tel);
      }
      auto db = sim::run_dynamic(sys.perf_table(), *mibs, mibs_cfg);
      auto dx = sim::run_dynamic(sys.perf_table(), *mix8, cfg);
      throughput.add_tasks(df.completed + dm.completed + db.completed +
                           dx.completed);
      double base = static_cast<double>(df.completed);
      out.add_row({fmt(lam, 0), std::to_string(df.completed),
                   fmt(dm.completed / base, 3), fmt(db.completed / base, 3),
                   fmt(dx.completed / base, 3)});
    }
    out.print(std::cout);
  }
  std::printf(
      "\npaper shape: ~1.0 at low lambda, interference-aware schedulers\n"
      "gain as lambda grows; medium mix benefits most.\n");
  return 0;
}
