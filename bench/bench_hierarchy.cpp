// Hierarchical management (Section 3's manager tree): does splitting
// the cluster across leaf managers preserve TRACON's scheduling gains,
// and what does partitioning cost relative to one flat cluster of the
// same total size?
//
// 64 machines total, heavy mix, lambda = 120/min: flat (1x64) vs
// 2x32, 4x16, 8x8 under round-robin routing, each with MIBS_8 per
// manager, normalized to the flat FIFO baseline.
#include "bench_common.hpp"
#include "sim/hierarchy.hpp"

using namespace tracon;

int main() {
  bench::print_header("Hierarchy",
                      "manager-tree partitioning at fixed total capacity");
  core::Tracon sys = bench::make_system();
  sys.train(model::ModelKind::kNonlinear);

  sim::DynamicConfig flat;
  flat.machines = 64;
  flat.lambda_per_min = 120.0;
  flat.duration_s = 18'000.0;
  flat.mix = workload::MixKind::kHeavy;
  auto fifo = sys.make_scheduler(core::SchedulerKind::kFifo,
                                 sched::Objective::kRuntime);
  auto base = sim::run_dynamic(sys.perf_table(), *fifo, flat);
  auto mibs = sys.make_scheduler(core::SchedulerKind::kMibs,
                                 sched::Objective::kRuntime, 8);
  auto flat_smart = sim::run_dynamic(sys.perf_table(), *mibs, flat);

  TableWriter out({"layout", "completed", "normalized vs flat FIFO",
                   "imbalance"});
  out.add_row({"flat FIFO (1x64)", std::to_string(base.completed),
               fmt(1.0, 3), "-"});
  out.add_row({"flat MIBS_8 (1x64)", std::to_string(flat_smart.completed),
               fmt(static_cast<double>(flat_smart.completed) /
                       static_cast<double>(base.completed),
                   3),
               "-"});
  for (std::size_t managers : {2UL, 4UL, 8UL}) {
    sim::HierarchyConfig cfg;
    cfg.managers = managers;
    cfg.machines_per_manager = 64 / managers;
    cfg.lambda_per_min = flat.lambda_per_min;
    cfg.duration_s = flat.duration_s;
    cfg.mix = flat.mix;
    auto o = sim::run_hierarchical(
        sys.perf_table(),
        [&](std::size_t) {
          return sys.make_scheduler(core::SchedulerKind::kMibs,
                                    sched::Objective::kRuntime, 8);
        },
        cfg);
    out.add_row({"MIBS_8 " + std::to_string(managers) + "x" +
                     std::to_string(64 / managers),
                 std::to_string(o.total.completed),
                 fmt(static_cast<double>(o.total.completed) /
                         static_cast<double>(base.completed),
                     3),
                 fmt(o.completion_imbalance(), 3)});
  }
  out.print(std::cout);
  std::printf(
      "\nexpected: partitioning preserves most of the interference-aware\n"
      "gain (each leaf still pairs within its shard); deeper splits cost\n"
      "a little pooling efficiency — the price of the paper's scalable\n"
      "manager tree.\n");
  return 0;
}
