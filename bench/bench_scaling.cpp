// Scaling study for the sharded dynamic scenario (DESIGN.md section 7):
//
//   1. cluster sweep — 1024 / 4096 / 10000 machines under MIBS_8 at
//      1 task/machine/min, run at 1/2/4/8 worker threads. Results are
//      byte-identical across thread counts (asserted here via completed
//      counts); only wall-clock changes, so the table reports the
//      parallel speedup of the shard pool.
//   2. batched-prediction microbench — a wide MIBS Min-Min batch over
//      the same cluster, driven once through a predictor that only
//      implements the scalar virtual calls (the base-class loop
//      fallback) and once through TablePredictor's vectorized batch
//      path, isolating what predict_*_batch buys the scheduler's
//      candidate scan.
//   3. decision-log overhead — the 4096-machine run repeated with
//      telemetry attached and decision recording off vs on, measuring
//      what the provenance stream (DESIGN.md section 6g) costs when
//      enabled (it is a no-op when off).
//   4. span-log overhead — the same off-vs-on probe for the
//      task-lifecycle span stream (DESIGN.md section 6i), which records
//      a span per co-runner epoch and so writes more events than the
//      decision log.
//
// When TRACON_BENCH_OUT names a directory, a machine-readable summary
// is written to $TRACON_BENCH_OUT/BENCH_scaling.json (CI consumes it;
// bench/run_all.sh exports the variable).
#include <chrono>

#include "bench_common.hpp"
#include "obs/telemetry.hpp"
#include "sched/candidate_index.hpp"
#include "sched/prediction_cache.hpp"
#include "sim/shard_scenario.hpp"
#include "stats/matrix.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

using namespace tracon;

namespace {

const sim::PerfTable& table() {
  static sim::PerfTable t = [] {
    model::Profiler prof(
        virt::HostSimulator(virt::HostConfig::paper_testbed()), 42);
    return sim::PerfTable::build(prof, workload::paper_benchmarks());
  }();
  return t;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Forwards the scalar predictions of `inner` but deliberately does NOT
/// override the batch hooks, so every batch call takes the base-class
/// per-query loop — the cost model of the pre-batching schedulers.
class ScalarOnlyPredictor final : public sched::Predictor {
 public:
  explicit ScalarOnlyPredictor(const sched::Predictor& inner)
      : inner_(inner) {}
  std::size_t num_apps() const override { return inner_.num_apps(); }
  double predict_runtime(
      std::size_t task,
      const std::optional<std::size_t>& neighbour) const override {
    return inner_.predict_runtime(task, neighbour);
  }
  double predict_iops(
      std::size_t task,
      const std::optional<std::size_t>& neighbour) const override {
    return inner_.predict_iops(task, neighbour);
  }

 private:
  const sched::Predictor& inner_;
};

const sched::TablePredictor& shared_oracle() {
  static sched::TablePredictor p = table().oracle_predictor();
  return p;
}

/// One shared immutable index serves every shard; per-shard state
/// (clustered availability) lives inside each shard's ClusterCounts.
const sched::CandidateIndex& shared_index() {
  static sched::CandidateIndex idx(shared_oracle());
  return idx;
}

struct ScalingRow {
  std::size_t machines = 0;
  std::size_t shards = 0;
  std::size_t threads = 0;
  double duration_s = 0.0;
  bool indexed = false;
  double wall_s = 0.0;
  double speedup = 0.0;
  double tasks_per_s = 0.0;
  std::size_t completed = 0;
};

/// One full sharded run; wall-clock measured around run_dynamic_sharded
/// only (table construction is shared and excluded). With `indexed`,
/// placements go through the candidate index and each shard's scheduler
/// reads the oracle through its own PredictionCache — the sublinear
/// path the CLI enables with --candidate-index.
ScalingRow run_once(std::size_t machines, std::size_t threads,
                    double duration_s = 1'800.0, bool indexed = false) {
  const sched::TablePredictor& oracle = shared_oracle();
  sim::ShardedConfig cfg;
  cfg.machines = machines;
  cfg.lambda_per_min = static_cast<double>(machines);  // 1 task/machine/min
  cfg.duration_s = duration_s;
  cfg.seed = 7;
  cfg.threads = threads;
  if (indexed) cfg.candidate_index = &shared_index();
  std::vector<std::unique_ptr<sched::PredictionCache>> caches;
  auto start = std::chrono::steady_clock::now();
  sim::ShardedOutcome o = sim::run_dynamic_sharded(
      table(),
      [&](std::size_t) -> std::unique_ptr<sched::Scheduler> {
        if (!indexed)
          return std::make_unique<sched::MibsScheduler>(
              oracle, sched::Objective::kRuntime, 8, 60.0);
        caches.push_back(std::make_unique<sched::PredictionCache>(oracle));
        return std::make_unique<sched::MibsScheduler>(
            *caches.back(), sched::Objective::kRuntime, 8, 60.0);
      },
      cfg);
  ScalingRow row;
  row.machines = machines;
  row.shards = o.shards;
  row.threads = o.threads_used;
  row.duration_s = duration_s;
  row.indexed = indexed;
  row.wall_s = seconds_since(start);
  row.tasks_per_s =
      row.wall_s > 0.0 ? static_cast<double>(o.total.completed) / row.wall_s
                       : 0.0;
  row.completed = o.total.completed;
  return row;
}

struct DecisionRow {
  double wall_s = 0.0;
  std::size_t events = 0;  ///< decision + outcome records produced
};

/// Decision-log overhead probe: the 4096-machine sweep configuration
/// re-run with telemetry attached, once with decision recording off
/// (the gate makes every record call a no-op) and once on.
DecisionRow run_decisions(std::size_t machines, std::size_t threads,
                          bool decisions) {
  const sched::TablePredictor& oracle = [] {
    static sched::TablePredictor p = table().oracle_predictor();
    return p;
  }();
  sim::ShardedConfig cfg;
  cfg.machines = machines;
  cfg.lambda_per_min = static_cast<double>(machines);
  cfg.duration_s = 1'800.0;
  cfg.seed = 7;
  cfg.threads = threads;
  obs::Telemetry tel;
  tel.decisions.set_enabled(decisions);
  cfg.telemetry = &tel;
  auto start = std::chrono::steady_clock::now();
  sim::run_dynamic_sharded(
      table(),
      [&](std::size_t) {
        return std::make_unique<sched::MibsScheduler>(
            oracle, sched::Objective::kRuntime, 8, 60.0);
      },
      cfg);
  DecisionRow row;
  row.wall_s = seconds_since(start);
  row.events = tel.decisions.size();
  return row;
}

/// Span-log overhead probe: same configuration, with the lifecycle
/// span stream (DESIGN.md section 6i) off vs on.
DecisionRow run_spans(std::size_t machines, std::size_t threads, bool spans) {
  const sched::TablePredictor& oracle = [] {
    static sched::TablePredictor p = table().oracle_predictor();
    return p;
  }();
  sim::ShardedConfig cfg;
  cfg.machines = machines;
  cfg.lambda_per_min = static_cast<double>(machines);
  cfg.duration_s = 1'800.0;
  cfg.seed = 7;
  cfg.threads = threads;
  obs::Telemetry tel;
  tel.spans.set_enabled(spans);
  cfg.telemetry = &tel;
  auto start = std::chrono::steady_clock::now();
  sim::run_dynamic_sharded(
      table(),
      [&](std::size_t) {
        return std::make_unique<sched::MibsScheduler>(
            oracle, sched::Objective::kRuntime, 8, 60.0);
      },
      cfg);
  DecisionRow row;
  row.wall_s = seconds_since(start);
  row.events = tel.spans.size();
  return row;
}

/// Microbench: repeated MIBS rounds with a 256-task Min-Min window over
/// a half-occupied cluster; returns microseconds per scheduling round.
/// The wide window (vs the paper's MIBS_8) stresses the candidate-2
/// scan, whose cost is quadratic in the window and which the batched
/// prediction API collapses into one virtual call per selection.
double mibs_round_us(const sched::Predictor& pred, int rounds) {
  const std::size_t apps = pred.num_apps();
  sched::ClusterCounts counts(apps, 1024);
  for (std::size_t m = 0; m < 512; ++m) counts.place(m % apps, std::nullopt);
  std::vector<sched::QueuedTask> queue;
  for (std::size_t i = 0; i < 256; ++i)
    queue.push_back({i % apps, 0.0});
  sched::PlacementPolicy policy;
  policy.beneficial_joins_only = false;
  // batch_every = 0: every call is a full Min-Min batch round.
  sched::MibsScheduler mibs(pred, sched::Objective::kRuntime, 256, 0.0,
                            policy);
  std::size_t sink = 0;
  auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r)
    sink += mibs.schedule(queue, counts, {0.0}).size();
  double elapsed = seconds_since(start);
  if (sink == 0) std::fprintf(stderr, "warn: microbench placed nothing\n");
  return elapsed * 1e6 / rounds;
}

/// Deterministic many-class prediction table. The paper's testbed has
/// only 8 application classes, where the flat candidate scan is already
/// cheap; scaling the class count shows where the shortlist index takes
/// over. Values follow a fixed formula, so the table (and the clusters
/// derived from it) is identical on every run.
sched::TablePredictor synthetic_table(std::size_t classes) {
  stats::Matrix rt(classes, classes + 1);
  stats::Matrix io(classes, classes + 1);
  for (std::size_t i = 0; i < classes; ++i) {
    for (std::size_t j = 0; j <= classes; ++j) {
      rt(i, j) = 60.0 + 3.0 * static_cast<double>(i) +
                 static_cast<double>((i * 7 + j * 13) % 23);
      io(i, j) = 40.0 + 2.0 * static_cast<double>(i) +
                 static_cast<double>((i * 11 + j * 5) % 19);
    }
  }
  return sched::TablePredictor(rt, io);
}

struct PlacementMicro {
  std::size_t classes = 0;
  double flat_ns = 0.0;
  double indexed_ns = 0.0;
  double speedup = 0.0;
};

/// Per-decision cost of the Algorithm 1 candidate scan over a
/// half-occupied 4096-machine cluster: the flat scan over every class
/// vs the cluster-shortlist index (identical placements by contract).
PlacementMicro placement_micro(const sched::TablePredictor& pred,
                               int iters) {
  const std::size_t n = pred.num_apps();
  sched::CandidateIndex idx(pred);
  sched::ClusterCounts counts(n, 4'096);
  idx.attach(&counts);
  for (std::size_t m = 0; m < 2'048; ++m) counts.place(m % n, std::nullopt);
  sched::PlacementPolicy policy;  // strict beneficial-join admission
  PlacementMicro row;
  row.classes = n;
  std::size_t sink = 0;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    auto slot = sched::mios_best_slot(static_cast<std::size_t>(i) % n,
                                      counts, pred,
                                      sched::Objective::kRuntime, policy);
    sink += slot.has_value() ? 1 : 0;
  }
  row.flat_ns = seconds_since(start) * 1e9 / iters;
  start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    auto slot = sched::mios_best_slot(static_cast<std::size_t>(i) % n,
                                      counts, pred,
                                      sched::Objective::kRuntime, policy,
                                      /*exclude_empty=*/false, &idx);
    sink += slot.has_value() ? 1 : 0;
  }
  row.indexed_ns = seconds_since(start) * 1e9 / iters;
  row.speedup = row.indexed_ns > 0.0 ? row.flat_ns / row.indexed_ns : 0.0;
  if (sink == 0) std::fprintf(stderr, "warn: placement micro placed nothing\n");
  return row;
}

struct CacheMicro {
  double ensemble_ns = 0.0;
  double cached_ns = 0.0;
  double speedup = 0.0;
};

/// Per-query cost of the confidence-weighted ensemble blend vs the same
/// ensemble read through a warmed PredictionCache (a hit is one dense
/// table lookup, bit-identical to the blend by construction).
CacheMicro cache_micro(int iters) {
  const sched::TablePredictor& a = shared_oracle();
  sched::TablePredictor b = table().oracle_predictor();
  sched::ConfidenceWeightedPredictor ensemble(
      {{"oracle", &a}, {"oracle2", &b}});
  sched::PredictionCache cache(ensemble);
  const std::size_t n = a.num_apps();
  const std::size_t stride = n + 1;
  auto neighbour_of = [&](std::size_t q) {
    std::size_t col = (q / n) % stride;
    return col == n ? std::optional<std::size_t>{}
                    : std::optional<std::size_t>{col};
  };
  // Warm every (pair, objective) slot so the timed loop measures hits.
  for (std::size_t q = 0; q < n * stride; ++q)
    cache.predict_runtime(q % n, neighbour_of(q));
  double sink = 0.0;
  CacheMicro row;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    std::size_t q = static_cast<std::size_t>(i);
    sink += ensemble.predict_runtime(q % n, neighbour_of(q));
  }
  row.ensemble_ns = seconds_since(start) * 1e9 / iters;
  start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    std::size_t q = static_cast<std::size_t>(i);
    sink += cache.predict_runtime(q % n, neighbour_of(q));
  }
  row.cached_ns = seconds_since(start) * 1e9 / iters;
  row.speedup = row.cached_ns > 0.0 ? row.ensemble_ns / row.cached_ns : 0.0;
  if (sink <= 0.0) std::fprintf(stderr, "warn: cache micro summed nothing\n");
  return row;
}

}  // namespace

int main() {
  bench::print_header("Scaling",
                      "sharded dynamic scenario and batched prediction");
  std::printf("host threads: %zu\n\n", hardware_threads());
  bench::ThroughputReporter throughput("bench_scaling");

  std::vector<ScalingRow> rows;
  TableWriter scaling({"machines", "shards", "threads", "wall_s",
                       "speedup", "tasks_per_s", "completed"});
  for (std::size_t machines : {1'024UL, 4'096UL, 10'000UL}) {
    double base_wall = 0.0;
    std::size_t base_completed = 0;
    for (std::size_t threads : {1UL, 2UL, 4UL, 8UL}) {
      ScalingRow row = run_once(machines, threads);
      if (threads == 1) {
        base_wall = row.wall_s;
        base_completed = row.completed;
      } else if (row.completed != base_completed) {
        // The determinism contract just failed; make it loud.
        std::fprintf(stderr,
                     "ERROR: thread count changed results (%zu machines: "
                     "%zu vs %zu completed)\n",
                     machines, base_completed, row.completed);
        return 1;
      }
      row.speedup = base_wall / row.wall_s;
      rows.push_back(row);
      throughput.add_tasks(row.completed);
      scaling.add_row({std::to_string(row.machines),
                       std::to_string(row.shards),
                       std::to_string(row.threads), fmt(row.wall_s, 2),
                       fmt(row.speedup, 2), fmt(row.tasks_per_s, 0),
                       std::to_string(row.completed)});
    }
  }
  scaling.print(std::cout);

  // Large tiers (DESIGN.md section 7): the same 1 task/machine/min load
  // at 10^5 and 10^6 machines. Each tier first runs the exact candidate
  // scan once, then the indexed path (candidate index + per-shard
  // prediction caches) at 1 and 4 worker threads; completed counts must
  // agree across all three runs — the byte-identity contract at scale.
  // The 10^6 horizon is shortened to 600 virtual seconds to keep the
  // whole bench minutes-scale; tasks/sec is the headline number.
  std::printf("\nlarge tiers (exact scan vs candidate index):\n");
  struct Tier {
    std::size_t machines;
    double duration_s;
  };
  std::vector<ScalingRow> large_rows;
  TableWriter large({"machines", "shards", "threads", "sim_s", "path",
                     "wall_s", "speedup", "tasks_per_s", "completed"});
  for (Tier tier : {Tier{100'000, 1'800.0}, Tier{1'000'000, 600.0}}) {
    ScalingRow exact = run_once(tier.machines, 1, tier.duration_s, false);
    exact.speedup = 1.0;
    for (std::size_t threads : {0UL, 1UL, 4UL}) {
      ScalingRow row = threads == 0
                           ? exact
                           : run_once(tier.machines, threads,
                                      tier.duration_s, true);
      if (row.completed != exact.completed) {
        std::fprintf(stderr,
                     "ERROR: candidate index changed results (%zu "
                     "machines: %zu vs %zu completed)\n",
                     tier.machines, exact.completed, row.completed);
        return 1;
      }
      row.speedup = exact.wall_s > 0.0 ? exact.wall_s / row.wall_s : 0.0;
      large_rows.push_back(row);
      throughput.add_tasks(row.completed);
      large.add_row({std::to_string(row.machines),
                     std::to_string(row.shards),
                     std::to_string(row.threads), fmt(row.duration_s, 0),
                     row.indexed ? "indexed" : "exact", fmt(row.wall_s, 2),
                     fmt(row.speedup, 2), fmt(row.tasks_per_s, 0),
                     std::to_string(row.completed)});
    }
  }
  large.print(std::cout);

  std::printf("\nplacement microbench "
              "(4096 machines, half occupied, strict admission):\n");
  std::vector<PlacementMicro> placement;
  TableWriter pmicro({"classes", "flat_ns", "indexed_ns", "speedup"});
  placement.push_back(placement_micro(shared_oracle(), 200'000));
  placement.push_back(placement_micro(synthetic_table(64), 50'000));
  for (const PlacementMicro& p : placement)
    pmicro.add_row({std::to_string(p.classes), fmt(p.flat_ns, 1),
                    fmt(p.indexed_ns, 1), fmt(p.speedup, 2)});
  pmicro.print(std::cout);

  std::printf("\nprediction-cache microbench "
              "(2-family confidence ensemble, warmed cache):\n");
  CacheMicro cachem = cache_micro(1'000'000);
  TableWriter cmicro({"path", "ns/query", "speedup"});
  cmicro.add_row({"ensemble blend", fmt(cachem.ensemble_ns, 1), "1.00"});
  cmicro.add_row({"cache hit", fmt(cachem.cached_ns, 1),
                  fmt(cachem.speedup, 2)});
  cmicro.print(std::cout);

  std::printf("\nMIBS batched-prediction microbench "
              "(1024 machines, 256-task Min-Min window):\n");
  sched::TablePredictor oracle = table().oracle_predictor();
  ScalarOnlyPredictor scalar(oracle);
  const int rounds = 200;
  double scalar_us = mibs_round_us(scalar, rounds);
  double batched_us = mibs_round_us(oracle, rounds);
  double micro_speedup = scalar_us / batched_us;
  TableWriter micro({"path", "us/round", "speedup"});
  micro.add_row({"scalar loop", fmt(scalar_us, 1), "1.00"});
  micro.add_row({"batched", fmt(batched_us, 1), fmt(micro_speedup, 2)});
  micro.print(std::cout);

  const std::size_t dec_machines = 4'096;
  const std::size_t dec_threads = 4;
  std::printf("\ndecision-log overhead (%zu machines, %zu threads):\n",
              dec_machines, dec_threads);
  DecisionRow dec_off = run_decisions(dec_machines, dec_threads, false);
  DecisionRow dec_on = run_decisions(dec_machines, dec_threads, true);
  double dec_overhead_pct =
      dec_off.wall_s > 0.0 ? (dec_on.wall_s / dec_off.wall_s - 1.0) * 100.0
                           : 0.0;
  TableWriter decisions({"recording", "wall_s", "overhead_%", "events"});
  decisions.add_row({"off", fmt(dec_off.wall_s, 2), "0.00",
                     std::to_string(dec_off.events)});
  decisions.add_row({"on", fmt(dec_on.wall_s, 2), fmt(dec_overhead_pct, 2),
                     std::to_string(dec_on.events)});
  decisions.print(std::cout);

  std::printf("\nspan-log overhead (%zu machines, %zu threads):\n",
              dec_machines, dec_threads);
  DecisionRow span_off = run_spans(dec_machines, dec_threads, false);
  DecisionRow span_on = run_spans(dec_machines, dec_threads, true);
  double span_overhead_pct =
      span_off.wall_s > 0.0
          ? (span_on.wall_s / span_off.wall_s - 1.0) * 100.0
          : 0.0;
  TableWriter spans({"recording", "wall_s", "overhead_%", "events"});
  spans.add_row({"off", fmt(span_off.wall_s, 2), "0.00",
                 std::to_string(span_off.events)});
  spans.add_row({"on", fmt(span_on.wall_s, 2), fmt(span_overhead_pct, 2),
                 std::to_string(span_on.events)});
  spans.print(std::cout);

  const char* out_dir = std::getenv("TRACON_BENCH_OUT");
  if (out_dir != nullptr && *out_dir != '\0') {
    std::string path = std::string(out_dir) + "/BENCH_scaling.json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    out << "{\n  \"schema\": \"tracon.bench_scaling\",\n"
        << "  \"host_threads\": " << hardware_threads() << ",\n"
        << "  \"scaling\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const ScalingRow& r = rows[i];
      out << "    {\"machines\": " << r.machines
          << ", \"shards\": " << r.shards << ", \"threads\": " << r.threads
          << ", \"wall_s\": " << fmt(r.wall_s, 4)
          << ", \"speedup\": " << fmt(r.speedup, 3)
          << ", \"tasks_per_sec\": " << fmt(r.tasks_per_s, 1)
          << ", \"completed\": " << r.completed << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"large_tiers\": [\n";
    for (std::size_t i = 0; i < large_rows.size(); ++i) {
      const ScalingRow& r = large_rows[i];
      out << "    {\"machines\": " << r.machines
          << ", \"shards\": " << r.shards << ", \"threads\": " << r.threads
          << ", \"duration_s\": " << fmt(r.duration_s, 1)
          << ", \"path\": \"" << (r.indexed ? "indexed" : "exact")
          << "\", \"wall_s\": " << fmt(r.wall_s, 4)
          << ", \"speedup_vs_exact\": " << fmt(r.speedup, 3)
          << ", \"tasks_per_sec\": " << fmt(r.tasks_per_s, 1)
          << ", \"completed\": " << r.completed << "}"
          << (i + 1 < large_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"placement_microbench\": [\n";
    for (std::size_t i = 0; i < placement.size(); ++i) {
      const PlacementMicro& p = placement[i];
      out << "    {\"classes\": " << p.classes
          << ", \"flat_ns_per_decision\": " << fmt(p.flat_ns, 2)
          << ", \"indexed_ns_per_decision\": " << fmt(p.indexed_ns, 2)
          << ", \"speedup\": " << fmt(p.speedup, 3) << "}"
          << (i + 1 < placement.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"prediction_cache_microbench\": "
        << "{\"ensemble_ns_per_query\": " << fmt(cachem.ensemble_ns, 2)
        << ", \"cached_ns_per_query\": " << fmt(cachem.cached_ns, 2)
        << ", \"speedup\": " << fmt(cachem.speedup, 3) << "},\n"
        << "  \"mibs_batch_microbench\": {\"scalar_us_per_round\": "
        << fmt(scalar_us, 2)
        << ", \"batched_us_per_round\": " << fmt(batched_us, 2)
        << ", \"speedup\": " << fmt(micro_speedup, 3) << "},\n"
        << "  \"decision_log\": {\"machines\": " << dec_machines
        << ", \"threads\": " << dec_threads
        << ", \"disabled_wall_s\": " << fmt(dec_off.wall_s, 4)
        << ", \"enabled_wall_s\": " << fmt(dec_on.wall_s, 4)
        << ", \"overhead_pct\": " << fmt(dec_overhead_pct, 2)
        << ", \"events\": " << dec_on.events << "},\n"
        << "  \"spans\": {\"machines\": " << dec_machines
        << ", \"threads\": " << dec_threads
        << ", \"disabled_wall_s\": " << fmt(span_off.wall_s, 4)
        << ", \"enabled_wall_s\": " << fmt(span_on.wall_s, 4)
        << ", \"overhead_pct\": " << fmt(span_overhead_pct, 2)
        << ", \"events\": " << span_on.events << "}\n}\n";
    std::printf("\nwrote %s\n", path.c_str());
  }
  return 0;
}
