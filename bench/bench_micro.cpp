// Micro benchmarks (google-benchmark): the scheduling-overhead claims of
// Section 3.2 (MIOS cheapest, MIX costliest, MIBS in between), model
// training/prediction cost, and the host-simulator allocation solver.
#include <benchmark/benchmark.h>

#include <memory>
#include <optional>

#include "core/tracon.hpp"
#include "model/evaluate.hpp"
#include "sched/fifo.hpp"
#include "sched/mibs.hpp"
#include "sched/mios.hpp"
#include "sched/mix.hpp"
#include "util/rng.hpp"
#include "virt/fairshare.hpp"
#include "workload/benchmarks.hpp"
#include "workload/mixes.hpp"

namespace {

using namespace tracon;

/// One shared system; building it is expensive, so it is lazily
/// constructed once for all benchmarks.
core::Tracon& system_instance() {
  static core::Tracon sys = [] {
    core::Tracon s;
    s.register_applications(workload::paper_benchmarks());
    s.train(model::ModelKind::kNonlinear);
    return s;
  }();
  return sys;
}

std::vector<sched::QueuedTask> make_queue(std::size_t n) {
  Rng rng(5);
  std::vector<sched::QueuedTask> q;
  for (std::size_t i = 0; i < n; ++i)
    q.push_back({workload::sample_benchmark_index(
                     workload::MixKind::kMedium, rng),
                 0.0});
  return q;
}

sched::ClusterCounts make_cluster(std::size_t num_apps) {
  sched::ClusterCounts c(num_apps, 64);
  // Occupy some machines so joins are an option.
  for (std::size_t a = 0; a < num_apps; ++a) c.place(a, std::nullopt);
  return c;
}

void BM_SolveSpeeds(benchmark::State& state) {
  virt::HostConfig cfg = virt::HostConfig::paper_testbed();
  std::vector<virt::VmDemand> demands(2);
  demands[0] = {0.45, 374, 125, 64, 0.95};
  demands[1] = {0.42, 210, 8, 128, 0.90};
  for (auto _ : state) {
    benchmark::DoNotOptimize(virt::solve_speeds(cfg, demands));
  }
}
BENCHMARK(BM_SolveSpeeds);

void BM_PairMeasurement(benchmark::State& state) {
  virt::HostSimulator sim(virt::HostConfig::paper_testbed());
  auto apps = workload::paper_benchmarks();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.measure_pair(apps[7], apps[5]));
  }
}
BENCHMARK(BM_PairMeasurement);

void BM_TrainNlm(benchmark::State& state) {
  core::Tracon& sys = system_instance();
  for (auto _ : state) {
    auto m = model::train_model(model::ModelKind::kNonlinear,
                                sys.training_set(7),
                                model::Response::kRuntime);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_TrainNlm);

void BM_PredictorLookup(benchmark::State& state) {
  core::Tracon& sys = system_instance();
  const auto& p = sys.predictor();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        p.predict_runtime(i % 8, std::optional<std::size_t>((i + 3) % 8)));
    ++i;
  }
}
BENCHMARK(BM_PredictorLookup);

void BM_ScheduleFifo(benchmark::State& state) {
  core::Tracon& sys = system_instance();
  auto queue = make_queue(8);
  auto cluster = make_cluster(sys.num_apps());
  sched::FifoScheduler s(3);
  sched::ScheduleContext ctx{1e9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.schedule(queue, cluster, ctx));
  }
}
BENCHMARK(BM_ScheduleFifo);

void BM_ScheduleMios(benchmark::State& state) {
  core::Tracon& sys = system_instance();
  auto queue = make_queue(8);
  auto cluster = make_cluster(sys.num_apps());
  sched::MiosScheduler s(sys.predictor(), sched::Objective::kRuntime);
  sched::ScheduleContext ctx{1e9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.schedule(queue, cluster, ctx));
  }
}
BENCHMARK(BM_ScheduleMios);

void BM_ScheduleMibs(benchmark::State& state) {
  core::Tracon& sys = system_instance();
  auto queue = make_queue(8);
  auto cluster = make_cluster(sys.num_apps());
  sched::MibsScheduler s(sys.predictor(), sched::Objective::kRuntime, 8);
  sched::ScheduleContext ctx{1e9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.schedule(queue, cluster, ctx));
  }
}
BENCHMARK(BM_ScheduleMibs);

void BM_ScheduleMix(benchmark::State& state) {
  core::Tracon& sys = system_instance();
  auto queue = make_queue(8);
  auto cluster = make_cluster(sys.num_apps());
  sched::MixScheduler s(sys.predictor(), sched::Objective::kRuntime, 8);
  sched::ScheduleContext ctx{1e9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.schedule(queue, cluster, ctx));
  }
}
BENCHMARK(BM_ScheduleMix);

}  // namespace

BENCHMARK_MAIN();
