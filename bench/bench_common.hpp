// Shared setup for the per-figure benchmark harnesses.
//
// Every bench binary reproduces one table or figure of the paper
// (see DESIGN.md section 4) and prints the same rows/series the paper
// reports, so output can be compared side by side. All randomness is
// seeded: each binary is deterministic end to end.
#pragma once

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "core/tracon.hpp"
#include "sched/fifo.hpp"
#include "sched/mibs.hpp"
#include "sim/dynamic_scenario.hpp"
#include "sim/static_scenario.hpp"
#include "util/summary.hpp"
#include "util/table.hpp"
#include "workload/benchmarks.hpp"
#include "workload/mixes.hpp"

namespace tracon::bench {

/// Builds the standard evaluation system: paper testbed host, the eight
/// benchmarks profiled against the 125-workload synthetic generator.
inline core::Tracon make_system() {
  core::Tracon sys;
  sys.register_applications(workload::paper_benchmarks());
  return sys;
}

/// Average static-scenario FIFO baseline over `repeats` seeds (the
/// paper reports the average of repeated runs).
struct StaticBaseline {
  double runtime = 0.0;
  double iops = 0.0;
};

inline StaticBaseline fifo_static_baseline(
    const sim::PerfTable& table, const std::vector<std::size_t>& tasks,
    std::size_t machines, int repeats = 20, std::uint64_t seed = 900) {
  StaticBaseline b;
  for (int r = 0; r < repeats; ++r) {
    sched::FifoScheduler fifo(seed + static_cast<std::uint64_t>(r));
    sim::StaticOutcome o = sim::run_static(table, fifo, tasks, machines);
    b.runtime += o.total_runtime;
    b.iops += o.total_iops;
  }
  b.runtime /= repeats;
  b.iops /= repeats;
  return b;
}

/// Placement policy for fixed-batch static allocation: every task must
/// be placed, so beneficial-join admission is disabled.
inline sched::PlacementPolicy static_policy() {
  sched::PlacementPolicy p;
  p.beneficial_joins_only = false;
  return p;
}

inline void print_header(const char* figure, const char* what) {
  std::printf("== %s: %s ==\n", figure, what);
}

}  // namespace tracon::bench
