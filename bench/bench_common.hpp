// Shared setup for the per-figure benchmark harnesses.
//
// Every bench binary reproduces one table or figure of the paper
// (see DESIGN.md section 4) and prints the same rows/series the paper
// reports, so output can be compared side by side. All randomness is
// seeded: each binary is deterministic end to end.
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/tracon.hpp"
#include "obs/telemetry.hpp"
#include "sched/fifo.hpp"
#include "sched/mibs.hpp"
#include "sim/dynamic_scenario.hpp"
#include "sim/static_scenario.hpp"
#include "util/summary.hpp"
#include "util/table.hpp"
#include "workload/benchmarks.hpp"
#include "workload/mixes.hpp"

namespace tracon::bench {

/// Builds the standard evaluation system: paper testbed host, the eight
/// benchmarks profiled against the 125-workload synthetic generator.
inline core::Tracon make_system() {
  core::Tracon sys;
  sys.register_applications(workload::paper_benchmarks());
  return sys;
}

/// Average static-scenario FIFO baseline over `repeats` seeds (the
/// paper reports the average of repeated runs).
struct StaticBaseline {
  double runtime = 0.0;
  double iops = 0.0;
};

inline StaticBaseline fifo_static_baseline(
    const sim::PerfTable& table, const std::vector<std::size_t>& tasks,
    std::size_t machines, int repeats = 20, std::uint64_t seed = 900) {
  StaticBaseline b;
  for (int r = 0; r < repeats; ++r) {
    sched::FifoScheduler fifo(seed + static_cast<std::uint64_t>(r));
    sim::StaticOutcome o = sim::run_static(table, fifo, tasks, machines);
    b.runtime += o.total_runtime;
    b.iops += o.total_iops;
  }
  b.runtime /= repeats;
  b.iops /= repeats;
  return b;
}

/// Placement policy for fixed-batch static allocation: every task must
/// be placed, so beneficial-join admission is disabled.
inline sched::PlacementPolicy static_policy() {
  sched::PlacementPolicy p;
  p.beneficial_joins_only = false;
  return p;
}

inline void print_header(const char* figure, const char* what) {
  std::printf("== %s: %s ==\n", figure, what);
}

/// Opt-in telemetry for a bench's representative runs: when the
/// TRACON_TELEMETRY_DIR environment variable names a directory, the
/// sidecar carries live telemetry sinks and writes
/// `<dir>/<name>_metrics.json` and `<dir>/<name>_trace.json` at scope
/// exit. Without the variable it is inert — telemetry() returns nullptr
/// and the bench runs exactly as before (the <2%% overhead budget).
class TelemetrySidecar {
 public:
  explicit TelemetrySidecar(std::string name) : name_(std::move(name)) {
    const char* dir = std::getenv("TRACON_TELEMETRY_DIR");
    if (dir == nullptr || *dir == '\0') return;
    dir_ = dir;
    tel_ = std::make_unique<obs::Telemetry>();
    tel_->tracer.set_enabled(true);
    // Metrics accumulate over every instrumented run, but an unbounded
    // trace of a multi-hour 1024-machine sweep reaches GB scale; cap
    // the trace at a Perfetto-friendly size (~25 MB of JSON).
    tel_->tracer.set_max_events(200000);
  }
  ~TelemetrySidecar() {
    if (tel_ == nullptr) return;
    std::ofstream mf(dir_ + "/" + name_ + "_metrics.json");
    if (mf) tel_->metrics.write_json(mf);
    std::ofstream tf(dir_ + "/" + name_ + "_trace.json");
    if (tf) tel_->tracer.write_chrome_json(tf);
  }
  TelemetrySidecar(const TelemetrySidecar&) = delete;
  TelemetrySidecar& operator=(const TelemetrySidecar&) = delete;

  obs::Telemetry* telemetry() { return tel_.get(); }

 private:
  std::string name_;
  std::string dir_;
  std::unique_ptr<obs::Telemetry> tel_;
};

/// Opt-in throughput sidecar: benches count the simulated tasks their
/// runs complete via add_tasks(), and when TRACON_BENCH_OUT names a
/// directory the destructor writes
/// `<dir>/THROUGHPUT_<name>.json` with the total, the tasks/sec over
/// the bench's whole wall clock, and the process peak RSS from
/// getrusage. bench/run_all.sh folds the sidecar into the wrapper
/// BENCH_<name>.json as its "throughput" block. Without the variable
/// the reporter is inert.
class ThroughputReporter {
 public:
  explicit ThroughputReporter(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
    const char* dir = std::getenv("TRACON_BENCH_OUT");
    if (dir != nullptr && *dir != '\0') dir_ = dir;
  }
  ~ThroughputReporter() {
    if (dir_.empty()) return;
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
    struct rusage usage {};
    long peak_rss_kb =
        getrusage(RUSAGE_SELF, &usage) == 0 ? usage.ru_maxrss : 0;
    std::ofstream out(dir_ + "/THROUGHPUT_" + name_ + ".json");
    if (!out) return;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"tasks_completed\": %zu, \"wall_s\": %.4f, "
                  "\"tasks_per_sec\": %.1f, \"peak_rss_kb\": %ld}",
                  tasks_, wall, wall > 0.0 ? tasks_ / wall : 0.0,
                  peak_rss_kb);
    out << buf << "\n";
  }
  ThroughputReporter(const ThroughputReporter&) = delete;
  ThroughputReporter& operator=(const ThroughputReporter&) = delete;

  void add_tasks(std::size_t n) { tasks_ += n; }

 private:
  std::string name_;
  std::string dir_;
  std::chrono::steady_clock::time_point start_;
  std::size_t tasks_ = 0;
};

}  // namespace tracon::bench
