
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10.cpp" "bench/CMakeFiles/bench_fig10.dir/bench_fig10.cpp.o" "gcc" "bench/CMakeFiles/bench_fig10.dir/bench_fig10.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tracon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tracon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tracon_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/tracon_model.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/tracon_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tracon_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/tracon_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tracon_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tracon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
