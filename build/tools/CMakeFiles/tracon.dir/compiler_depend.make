# Empty compiler generated dependencies file for tracon.
# This may be replaced when dependencies are built.
