file(REMOVE_RECURSE
  "CMakeFiles/tracon.dir/tracon_cli.cpp.o"
  "CMakeFiles/tracon.dir/tracon_cli.cpp.o.d"
  "tracon"
  "tracon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
