# Empty dependencies file for tracon_model.
# This may be replaced when dependencies are built.
