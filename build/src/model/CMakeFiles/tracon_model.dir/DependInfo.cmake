
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/adaptive.cpp" "src/model/CMakeFiles/tracon_model.dir/adaptive.cpp.o" "gcc" "src/model/CMakeFiles/tracon_model.dir/adaptive.cpp.o.d"
  "/root/repo/src/model/evaluate.cpp" "src/model/CMakeFiles/tracon_model.dir/evaluate.cpp.o" "gcc" "src/model/CMakeFiles/tracon_model.dir/evaluate.cpp.o.d"
  "/root/repo/src/model/factory.cpp" "src/model/CMakeFiles/tracon_model.dir/factory.cpp.o" "gcc" "src/model/CMakeFiles/tracon_model.dir/factory.cpp.o.d"
  "/root/repo/src/model/linear.cpp" "src/model/CMakeFiles/tracon_model.dir/linear.cpp.o" "gcc" "src/model/CMakeFiles/tracon_model.dir/linear.cpp.o.d"
  "/root/repo/src/model/nonlinear.cpp" "src/model/CMakeFiles/tracon_model.dir/nonlinear.cpp.o" "gcc" "src/model/CMakeFiles/tracon_model.dir/nonlinear.cpp.o.d"
  "/root/repo/src/model/profiler.cpp" "src/model/CMakeFiles/tracon_model.dir/profiler.cpp.o" "gcc" "src/model/CMakeFiles/tracon_model.dir/profiler.cpp.o.d"
  "/root/repo/src/model/standardize.cpp" "src/model/CMakeFiles/tracon_model.dir/standardize.cpp.o" "gcc" "src/model/CMakeFiles/tracon_model.dir/standardize.cpp.o.d"
  "/root/repo/src/model/training.cpp" "src/model/CMakeFiles/tracon_model.dir/training.cpp.o" "gcc" "src/model/CMakeFiles/tracon_model.dir/training.cpp.o.d"
  "/root/repo/src/model/wmm.cpp" "src/model/CMakeFiles/tracon_model.dir/wmm.cpp.o" "gcc" "src/model/CMakeFiles/tracon_model.dir/wmm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/tracon_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/tracon_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tracon_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/tracon_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tracon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
