file(REMOVE_RECURSE
  "CMakeFiles/tracon_model.dir/adaptive.cpp.o"
  "CMakeFiles/tracon_model.dir/adaptive.cpp.o.d"
  "CMakeFiles/tracon_model.dir/evaluate.cpp.o"
  "CMakeFiles/tracon_model.dir/evaluate.cpp.o.d"
  "CMakeFiles/tracon_model.dir/factory.cpp.o"
  "CMakeFiles/tracon_model.dir/factory.cpp.o.d"
  "CMakeFiles/tracon_model.dir/linear.cpp.o"
  "CMakeFiles/tracon_model.dir/linear.cpp.o.d"
  "CMakeFiles/tracon_model.dir/nonlinear.cpp.o"
  "CMakeFiles/tracon_model.dir/nonlinear.cpp.o.d"
  "CMakeFiles/tracon_model.dir/profiler.cpp.o"
  "CMakeFiles/tracon_model.dir/profiler.cpp.o.d"
  "CMakeFiles/tracon_model.dir/standardize.cpp.o"
  "CMakeFiles/tracon_model.dir/standardize.cpp.o.d"
  "CMakeFiles/tracon_model.dir/training.cpp.o"
  "CMakeFiles/tracon_model.dir/training.cpp.o.d"
  "CMakeFiles/tracon_model.dir/wmm.cpp.o"
  "CMakeFiles/tracon_model.dir/wmm.cpp.o.d"
  "libtracon_model.a"
  "libtracon_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracon_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
