file(REMOVE_RECURSE
  "libtracon_model.a"
)
