src/virt/CMakeFiles/tracon_virt.dir/host_config.cpp.o: \
 /root/repo/src/virt/host_config.cpp /usr/include/stdc-predef.h \
 /root/repo/src/virt/host_config.hpp
