file(REMOVE_RECURSE
  "CMakeFiles/tracon_virt.dir/fairshare.cpp.o"
  "CMakeFiles/tracon_virt.dir/fairshare.cpp.o.d"
  "CMakeFiles/tracon_virt.dir/host_config.cpp.o"
  "CMakeFiles/tracon_virt.dir/host_config.cpp.o.d"
  "CMakeFiles/tracon_virt.dir/host_sim.cpp.o"
  "CMakeFiles/tracon_virt.dir/host_sim.cpp.o.d"
  "libtracon_virt.a"
  "libtracon_virt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracon_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
