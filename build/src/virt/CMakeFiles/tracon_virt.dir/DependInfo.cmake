
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/virt/fairshare.cpp" "src/virt/CMakeFiles/tracon_virt.dir/fairshare.cpp.o" "gcc" "src/virt/CMakeFiles/tracon_virt.dir/fairshare.cpp.o.d"
  "/root/repo/src/virt/host_config.cpp" "src/virt/CMakeFiles/tracon_virt.dir/host_config.cpp.o" "gcc" "src/virt/CMakeFiles/tracon_virt.dir/host_config.cpp.o.d"
  "/root/repo/src/virt/host_sim.cpp" "src/virt/CMakeFiles/tracon_virt.dir/host_sim.cpp.o" "gcc" "src/virt/CMakeFiles/tracon_virt.dir/host_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tracon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
