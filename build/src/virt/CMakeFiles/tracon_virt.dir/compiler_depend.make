# Empty compiler generated dependencies file for tracon_virt.
# This may be replaced when dependencies are built.
