file(REMOVE_RECURSE
  "libtracon_virt.a"
)
