file(REMOVE_RECURSE
  "libtracon_monitor.a"
)
