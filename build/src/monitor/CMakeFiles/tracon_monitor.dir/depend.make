# Empty dependencies file for tracon_monitor.
# This may be replaced when dependencies are built.
