file(REMOVE_RECURSE
  "CMakeFiles/tracon_monitor.dir/drift.cpp.o"
  "CMakeFiles/tracon_monitor.dir/drift.cpp.o.d"
  "CMakeFiles/tracon_monitor.dir/monitor.cpp.o"
  "CMakeFiles/tracon_monitor.dir/monitor.cpp.o.d"
  "CMakeFiles/tracon_monitor.dir/profile.cpp.o"
  "CMakeFiles/tracon_monitor.dir/profile.cpp.o.d"
  "libtracon_monitor.a"
  "libtracon_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracon_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
