file(REMOVE_RECURSE
  "libtracon_sched.a"
)
