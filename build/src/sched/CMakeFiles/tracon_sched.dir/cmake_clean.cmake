file(REMOVE_RECURSE
  "CMakeFiles/tracon_sched.dir/cluster_counts.cpp.o"
  "CMakeFiles/tracon_sched.dir/cluster_counts.cpp.o.d"
  "CMakeFiles/tracon_sched.dir/fifo.cpp.o"
  "CMakeFiles/tracon_sched.dir/fifo.cpp.o.d"
  "CMakeFiles/tracon_sched.dir/mibs.cpp.o"
  "CMakeFiles/tracon_sched.dir/mibs.cpp.o.d"
  "CMakeFiles/tracon_sched.dir/mios.cpp.o"
  "CMakeFiles/tracon_sched.dir/mios.cpp.o.d"
  "CMakeFiles/tracon_sched.dir/mix.cpp.o"
  "CMakeFiles/tracon_sched.dir/mix.cpp.o.d"
  "CMakeFiles/tracon_sched.dir/predictor.cpp.o"
  "CMakeFiles/tracon_sched.dir/predictor.cpp.o.d"
  "libtracon_sched.a"
  "libtracon_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracon_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
