# Empty compiler generated dependencies file for tracon_sched.
# This may be replaced when dependencies are built.
