
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/cluster_counts.cpp" "src/sched/CMakeFiles/tracon_sched.dir/cluster_counts.cpp.o" "gcc" "src/sched/CMakeFiles/tracon_sched.dir/cluster_counts.cpp.o.d"
  "/root/repo/src/sched/fifo.cpp" "src/sched/CMakeFiles/tracon_sched.dir/fifo.cpp.o" "gcc" "src/sched/CMakeFiles/tracon_sched.dir/fifo.cpp.o.d"
  "/root/repo/src/sched/mibs.cpp" "src/sched/CMakeFiles/tracon_sched.dir/mibs.cpp.o" "gcc" "src/sched/CMakeFiles/tracon_sched.dir/mibs.cpp.o.d"
  "/root/repo/src/sched/mios.cpp" "src/sched/CMakeFiles/tracon_sched.dir/mios.cpp.o" "gcc" "src/sched/CMakeFiles/tracon_sched.dir/mios.cpp.o.d"
  "/root/repo/src/sched/mix.cpp" "src/sched/CMakeFiles/tracon_sched.dir/mix.cpp.o" "gcc" "src/sched/CMakeFiles/tracon_sched.dir/mix.cpp.o.d"
  "/root/repo/src/sched/predictor.cpp" "src/sched/CMakeFiles/tracon_sched.dir/predictor.cpp.o" "gcc" "src/sched/CMakeFiles/tracon_sched.dir/predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/tracon_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tracon_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tracon_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/tracon_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tracon_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/tracon_virt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
