file(REMOVE_RECURSE
  "libtracon_workload.a"
)
