file(REMOVE_RECURSE
  "CMakeFiles/tracon_workload.dir/benchmarks.cpp.o"
  "CMakeFiles/tracon_workload.dir/benchmarks.cpp.o.d"
  "CMakeFiles/tracon_workload.dir/mixes.cpp.o"
  "CMakeFiles/tracon_workload.dir/mixes.cpp.o.d"
  "CMakeFiles/tracon_workload.dir/synthetic.cpp.o"
  "CMakeFiles/tracon_workload.dir/synthetic.cpp.o.d"
  "libtracon_workload.a"
  "libtracon_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracon_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
