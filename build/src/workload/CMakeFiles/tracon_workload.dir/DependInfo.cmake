
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/benchmarks.cpp" "src/workload/CMakeFiles/tracon_workload.dir/benchmarks.cpp.o" "gcc" "src/workload/CMakeFiles/tracon_workload.dir/benchmarks.cpp.o.d"
  "/root/repo/src/workload/mixes.cpp" "src/workload/CMakeFiles/tracon_workload.dir/mixes.cpp.o" "gcc" "src/workload/CMakeFiles/tracon_workload.dir/mixes.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/workload/CMakeFiles/tracon_workload.dir/synthetic.cpp.o" "gcc" "src/workload/CMakeFiles/tracon_workload.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/virt/CMakeFiles/tracon_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tracon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
