# Empty compiler generated dependencies file for tracon_workload.
# This may be replaced when dependencies are built.
