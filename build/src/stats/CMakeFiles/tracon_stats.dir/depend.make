# Empty dependencies file for tracon_stats.
# This may be replaced when dependencies are built.
