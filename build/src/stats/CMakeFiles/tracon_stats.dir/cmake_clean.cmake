file(REMOVE_RECURSE
  "CMakeFiles/tracon_stats.dir/knn.cpp.o"
  "CMakeFiles/tracon_stats.dir/knn.cpp.o.d"
  "CMakeFiles/tracon_stats.dir/linalg.cpp.o"
  "CMakeFiles/tracon_stats.dir/linalg.cpp.o.d"
  "CMakeFiles/tracon_stats.dir/matrix.cpp.o"
  "CMakeFiles/tracon_stats.dir/matrix.cpp.o.d"
  "CMakeFiles/tracon_stats.dir/nls.cpp.o"
  "CMakeFiles/tracon_stats.dir/nls.cpp.o.d"
  "CMakeFiles/tracon_stats.dir/ols.cpp.o"
  "CMakeFiles/tracon_stats.dir/ols.cpp.o.d"
  "CMakeFiles/tracon_stats.dir/pca.cpp.o"
  "CMakeFiles/tracon_stats.dir/pca.cpp.o.d"
  "CMakeFiles/tracon_stats.dir/polynomial.cpp.o"
  "CMakeFiles/tracon_stats.dir/polynomial.cpp.o.d"
  "CMakeFiles/tracon_stats.dir/stepwise.cpp.o"
  "CMakeFiles/tracon_stats.dir/stepwise.cpp.o.d"
  "libtracon_stats.a"
  "libtracon_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracon_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
