file(REMOVE_RECURSE
  "libtracon_stats.a"
)
