
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/knn.cpp" "src/stats/CMakeFiles/tracon_stats.dir/knn.cpp.o" "gcc" "src/stats/CMakeFiles/tracon_stats.dir/knn.cpp.o.d"
  "/root/repo/src/stats/linalg.cpp" "src/stats/CMakeFiles/tracon_stats.dir/linalg.cpp.o" "gcc" "src/stats/CMakeFiles/tracon_stats.dir/linalg.cpp.o.d"
  "/root/repo/src/stats/matrix.cpp" "src/stats/CMakeFiles/tracon_stats.dir/matrix.cpp.o" "gcc" "src/stats/CMakeFiles/tracon_stats.dir/matrix.cpp.o.d"
  "/root/repo/src/stats/nls.cpp" "src/stats/CMakeFiles/tracon_stats.dir/nls.cpp.o" "gcc" "src/stats/CMakeFiles/tracon_stats.dir/nls.cpp.o.d"
  "/root/repo/src/stats/ols.cpp" "src/stats/CMakeFiles/tracon_stats.dir/ols.cpp.o" "gcc" "src/stats/CMakeFiles/tracon_stats.dir/ols.cpp.o.d"
  "/root/repo/src/stats/pca.cpp" "src/stats/CMakeFiles/tracon_stats.dir/pca.cpp.o" "gcc" "src/stats/CMakeFiles/tracon_stats.dir/pca.cpp.o.d"
  "/root/repo/src/stats/polynomial.cpp" "src/stats/CMakeFiles/tracon_stats.dir/polynomial.cpp.o" "gcc" "src/stats/CMakeFiles/tracon_stats.dir/polynomial.cpp.o.d"
  "/root/repo/src/stats/stepwise.cpp" "src/stats/CMakeFiles/tracon_stats.dir/stepwise.cpp.o" "gcc" "src/stats/CMakeFiles/tracon_stats.dir/stepwise.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tracon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
