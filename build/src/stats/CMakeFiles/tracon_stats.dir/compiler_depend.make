# Empty compiler generated dependencies file for tracon_stats.
# This may be replaced when dependencies are built.
