# Empty compiler generated dependencies file for tracon_sim.
# This may be replaced when dependencies are built.
