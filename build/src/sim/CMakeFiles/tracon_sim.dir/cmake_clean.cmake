file(REMOVE_RECURSE
  "CMakeFiles/tracon_sim.dir/dynamic_scenario.cpp.o"
  "CMakeFiles/tracon_sim.dir/dynamic_scenario.cpp.o.d"
  "CMakeFiles/tracon_sim.dir/hierarchy.cpp.o"
  "CMakeFiles/tracon_sim.dir/hierarchy.cpp.o.d"
  "CMakeFiles/tracon_sim.dir/perf_table.cpp.o"
  "CMakeFiles/tracon_sim.dir/perf_table.cpp.o.d"
  "CMakeFiles/tracon_sim.dir/static_scenario.cpp.o"
  "CMakeFiles/tracon_sim.dir/static_scenario.cpp.o.d"
  "CMakeFiles/tracon_sim.dir/trace.cpp.o"
  "CMakeFiles/tracon_sim.dir/trace.cpp.o.d"
  "libtracon_sim.a"
  "libtracon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
