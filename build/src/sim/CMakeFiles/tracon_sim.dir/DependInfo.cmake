
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/dynamic_scenario.cpp" "src/sim/CMakeFiles/tracon_sim.dir/dynamic_scenario.cpp.o" "gcc" "src/sim/CMakeFiles/tracon_sim.dir/dynamic_scenario.cpp.o.d"
  "/root/repo/src/sim/hierarchy.cpp" "src/sim/CMakeFiles/tracon_sim.dir/hierarchy.cpp.o" "gcc" "src/sim/CMakeFiles/tracon_sim.dir/hierarchy.cpp.o.d"
  "/root/repo/src/sim/perf_table.cpp" "src/sim/CMakeFiles/tracon_sim.dir/perf_table.cpp.o" "gcc" "src/sim/CMakeFiles/tracon_sim.dir/perf_table.cpp.o.d"
  "/root/repo/src/sim/static_scenario.cpp" "src/sim/CMakeFiles/tracon_sim.dir/static_scenario.cpp.o" "gcc" "src/sim/CMakeFiles/tracon_sim.dir/static_scenario.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/tracon_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/tracon_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/tracon_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/tracon_model.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tracon_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tracon_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tracon_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/tracon_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/tracon_virt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
