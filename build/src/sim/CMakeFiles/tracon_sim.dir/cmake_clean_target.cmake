file(REMOVE_RECURSE
  "libtracon_sim.a"
)
