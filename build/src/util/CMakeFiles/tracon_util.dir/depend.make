# Empty dependencies file for tracon_util.
# This may be replaced when dependencies are built.
