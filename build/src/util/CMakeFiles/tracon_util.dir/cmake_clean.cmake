file(REMOVE_RECURSE
  "CMakeFiles/tracon_util.dir/cli.cpp.o"
  "CMakeFiles/tracon_util.dir/cli.cpp.o.d"
  "CMakeFiles/tracon_util.dir/log.cpp.o"
  "CMakeFiles/tracon_util.dir/log.cpp.o.d"
  "CMakeFiles/tracon_util.dir/rng.cpp.o"
  "CMakeFiles/tracon_util.dir/rng.cpp.o.d"
  "CMakeFiles/tracon_util.dir/summary.cpp.o"
  "CMakeFiles/tracon_util.dir/summary.cpp.o.d"
  "CMakeFiles/tracon_util.dir/table.cpp.o"
  "CMakeFiles/tracon_util.dir/table.cpp.o.d"
  "libtracon_util.a"
  "libtracon_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracon_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
