file(REMOVE_RECURSE
  "libtracon_util.a"
)
