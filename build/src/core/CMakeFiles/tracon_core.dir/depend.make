# Empty dependencies file for tracon_core.
# This may be replaced when dependencies are built.
