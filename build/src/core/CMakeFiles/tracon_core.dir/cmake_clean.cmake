file(REMOVE_RECURSE
  "CMakeFiles/tracon_core.dir/tracon.cpp.o"
  "CMakeFiles/tracon_core.dir/tracon.cpp.o.d"
  "libtracon_core.a"
  "libtracon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
