file(REMOVE_RECURSE
  "libtracon_core.a"
)
