# Empty compiler generated dependencies file for example_datacenter_consolidation.
# This may be replaced when dependencies are built.
