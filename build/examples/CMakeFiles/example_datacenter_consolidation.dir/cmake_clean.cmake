file(REMOVE_RECURSE
  "CMakeFiles/example_datacenter_consolidation.dir/datacenter_consolidation.cpp.o"
  "CMakeFiles/example_datacenter_consolidation.dir/datacenter_consolidation.cpp.o.d"
  "example_datacenter_consolidation"
  "example_datacenter_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_datacenter_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
