file(REMOVE_RECURSE
  "CMakeFiles/example_model_adaptation.dir/model_adaptation.cpp.o"
  "CMakeFiles/example_model_adaptation.dir/model_adaptation.cpp.o.d"
  "example_model_adaptation"
  "example_model_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_model_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
