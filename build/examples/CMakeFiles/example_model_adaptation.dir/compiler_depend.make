# Empty compiler generated dependencies file for example_model_adaptation.
# This may be replaced when dependencies are built.
