file(REMOVE_RECURSE
  "CMakeFiles/example_scheduler_comparison.dir/scheduler_comparison.cpp.o"
  "CMakeFiles/example_scheduler_comparison.dir/scheduler_comparison.cpp.o.d"
  "example_scheduler_comparison"
  "example_scheduler_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_scheduler_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
