# Empty compiler generated dependencies file for example_scheduler_comparison.
# This may be replaced when dependencies are built.
