file(REMOVE_RECURSE
  "CMakeFiles/test_host_sim.dir/test_host_sim.cpp.o"
  "CMakeFiles/test_host_sim.dir/test_host_sim.cpp.o.d"
  "test_host_sim"
  "test_host_sim.pdb"
  "test_host_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
