# Empty dependencies file for test_host_sim.
# This may be replaced when dependencies are built.
