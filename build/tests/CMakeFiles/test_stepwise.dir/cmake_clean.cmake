file(REMOVE_RECURSE
  "CMakeFiles/test_stepwise.dir/test_stepwise.cpp.o"
  "CMakeFiles/test_stepwise.dir/test_stepwise.cpp.o.d"
  "test_stepwise"
  "test_stepwise.pdb"
  "test_stepwise[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stepwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
