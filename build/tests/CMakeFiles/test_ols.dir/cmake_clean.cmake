file(REMOVE_RECURSE
  "CMakeFiles/test_ols.dir/test_ols.cpp.o"
  "CMakeFiles/test_ols.dir/test_ols.cpp.o.d"
  "test_ols"
  "test_ols.pdb"
  "test_ols[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
