# Empty dependencies file for test_ols.
# This may be replaced when dependencies are built.
