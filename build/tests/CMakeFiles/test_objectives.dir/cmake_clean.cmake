file(REMOVE_RECURSE
  "CMakeFiles/test_objectives.dir/test_objectives.cpp.o"
  "CMakeFiles/test_objectives.dir/test_objectives.cpp.o.d"
  "test_objectives"
  "test_objectives.pdb"
  "test_objectives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_objectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
