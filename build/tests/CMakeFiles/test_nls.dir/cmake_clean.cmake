file(REMOVE_RECURSE
  "CMakeFiles/test_nls.dir/test_nls.cpp.o"
  "CMakeFiles/test_nls.dir/test_nls.cpp.o.d"
  "test_nls"
  "test_nls.pdb"
  "test_nls[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
