# Empty compiler generated dependencies file for test_nls.
# This may be replaced when dependencies are built.
