# Empty compiler generated dependencies file for test_cluster_counts.
# This may be replaced when dependencies are built.
