file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_counts.dir/test_cluster_counts.cpp.o"
  "CMakeFiles/test_cluster_counts.dir/test_cluster_counts.cpp.o.d"
  "test_cluster_counts"
  "test_cluster_counts.pdb"
  "test_cluster_counts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
