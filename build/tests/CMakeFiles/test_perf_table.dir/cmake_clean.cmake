file(REMOVE_RECURSE
  "CMakeFiles/test_perf_table.dir/test_perf_table.cpp.o"
  "CMakeFiles/test_perf_table.dir/test_perf_table.cpp.o.d"
  "test_perf_table"
  "test_perf_table.pdb"
  "test_perf_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
