# Empty compiler generated dependencies file for test_perf_table.
# This may be replaced when dependencies are built.
