# Empty dependencies file for test_log_model.
# This may be replaced when dependencies are built.
