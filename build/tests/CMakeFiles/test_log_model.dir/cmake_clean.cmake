file(REMOVE_RECURSE
  "CMakeFiles/test_log_model.dir/test_log_model.cpp.o"
  "CMakeFiles/test_log_model.dir/test_log_model.cpp.o.d"
  "test_log_model"
  "test_log_model.pdb"
  "test_log_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_log_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
