file(REMOVE_RECURSE
  "CMakeFiles/test_static_scenario.dir/test_static_scenario.cpp.o"
  "CMakeFiles/test_static_scenario.dir/test_static_scenario.cpp.o.d"
  "test_static_scenario"
  "test_static_scenario.pdb"
  "test_static_scenario[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
