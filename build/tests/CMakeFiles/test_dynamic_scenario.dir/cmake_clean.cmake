file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_scenario.dir/test_dynamic_scenario.cpp.o"
  "CMakeFiles/test_dynamic_scenario.dir/test_dynamic_scenario.cpp.o.d"
  "test_dynamic_scenario"
  "test_dynamic_scenario.pdb"
  "test_dynamic_scenario[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
