# Empty dependencies file for test_dynamic_scenario.
# This may be replaced when dependencies are built.
