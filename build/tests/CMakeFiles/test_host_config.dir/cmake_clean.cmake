file(REMOVE_RECURSE
  "CMakeFiles/test_host_config.dir/test_host_config.cpp.o"
  "CMakeFiles/test_host_config.dir/test_host_config.cpp.o.d"
  "test_host_config"
  "test_host_config.pdb"
  "test_host_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
