# Empty compiler generated dependencies file for test_host_config.
# This may be replaced when dependencies are built.
